//! The on-chain storage-manager smart contract (paper Listing 2).
//!
//! Functions:
//!
//! * `update(digest, rUpdates, toR, toNR)` — DO-only epoch update: stores
//!   the new root digest, overwrites replicated records that changed,
//!   inserts replicas for NR→R transitions and evicts them for R→NR;
//! * `gGet(key, callback)` — internal call from a DU contract: serves the
//!   record from the on-chain replica when present, otherwise emits a
//!   `Request` event for the SP's watchdog;
//! * `gScan(startKey, endKey, callback)` — range variant: emits a
//!   `RequestRange` event;
//! * `deliver(startKey, endKey, records, proof, callbacks)` — called by the
//!   SP: verifies the range proof against the stored root digest (charging
//!   `Chash` per recomputed node) and invokes the buffered callbacks with
//!   the authenticated records.
//!
//! The callback dispatch mirrors the paper's Listing 2, including its
//! stateless-callback design: the contract does not persist pending request
//! IDs (that would cost storage writes), so the SP echoes the callback
//! reference from the `Request` event. Consequently the SP can only invoke
//! callbacks with *verified* data, but could replay them; applications that
//! care sequence their reads (as the paper's DUs do).
//!
//! The optional on-chain-trace mode implements the paper's BL3 baselines
//! (Figure 7): the monitoring counters that GRuB keeps off-chain are instead
//! maintained in contract storage, charging an extra storage read + write
//! per monitored operation.

use grub_chain::codec::{Decoder, Encoder};
use grub_chain::{Address, CallContext, Contract, VmError};
use grub_crypto::Hash32;
use grub_gas::{words_for_bytes, CostKind};
use grub_merkle::{record_value_hash, ProofKey, RangeProof, ReplState};

use crate::wire;

/// Storage slot for the root digest.
const SLOT_ROOT: &[u8] = b"root";

/// Eviction marker left in a replica slot instead of deleting it. Keeping
/// the slot warm means a later re-replication pays `Cupdate` rather than
/// `Cinsert` — the paper's "reusable storage upon replicating a record"
/// (§4.2), and the reason Equation 1 is stated in terms of `Cupdate`.
pub const EVICTED_MARKER: &[u8] = b"\xffGRUB_EVICTED";

/// Where the monitoring trace is kept — [`OnChainTrace::None`] is GRuB's
/// design (off-chain monitor); the other two are the BL3 baselines of
/// Figure 7 that pay Gas to keep counters on-chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnChainTrace {
    /// GRuB: monitoring happens off-chain, no extra Gas.
    #[default]
    None,
    /// Baseline: the read trace is counted in contract storage.
    Reads,
    /// Baseline: both reads and writes are counted in contract storage.
    ReadsAndWrites,
}

/// The storage-manager contract.
#[derive(Debug)]
pub struct StorageManager {
    data_owner: Address,
    update_delegate: Option<Address>,
    trace_mode: OnChainTrace,
}

impl StorageManager {
    /// Deploy-time configuration: the trusted DO account and the trace mode.
    pub fn new(data_owner: Address, trace_mode: OnChainTrace) -> Self {
        StorageManager {
            data_owner,
            update_delegate: None,
            trace_mode,
        }
    }

    /// Like [`StorageManager::new`] with a second account/contract trusted
    /// to call `update()` — the multi-tenant engine's shard router, which
    /// forwards many feeds' epoch updates out of one batched transaction.
    /// The DO stays authorized (it still sends preload updates directly).
    pub fn with_delegate(
        data_owner: Address,
        update_delegate: Address,
        trace_mode: OnChainTrace,
    ) -> Self {
        StorageManager {
            data_owner,
            update_delegate: Some(update_delegate),
            trace_mode,
        }
    }

    fn replica_slot(key: &[u8]) -> Vec<u8> {
        let mut slot = Vec::with_capacity(3 + key.len());
        slot.extend_from_slice(b"kv:");
        slot.extend_from_slice(key);
        slot
    }

    fn counter_slot(key: &[u8]) -> Vec<u8> {
        let mut slot = Vec::with_capacity(4 + key.len());
        slot.extend_from_slice(b"cnt:");
        slot.extend_from_slice(key);
        slot
    }

    fn bump_counter(&self, ctx: &mut CallContext<'_>, key: &[u8]) -> Result<(), VmError> {
        let slot = Self::counter_slot(key);
        let n = ctx.sload_u64(&slot)?.unwrap_or(0);
        ctx.sstore_u64(&slot, n + 1)
    }

    /// `update()` — the DO's epoch transaction (write path, §3.3).
    fn update(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, VmError> {
        if ctx.caller != self.data_owner && Some(ctx.caller) != self.update_delegate {
            return Err(VmError::Unauthorized);
        }
        let mut dec = Decoder::new(input);
        let digest = dec.hash()?;
        ctx.sstore(SLOT_ROOT, digest.as_bytes())?;
        // Updates to records that are already replicated.
        let n_updates = dec.u64()? as usize;
        for _ in 0..n_updates {
            let key = dec.bytes()?.to_vec();
            let value = dec.bytes()?.to_vec();
            ctx.sstore(&Self::replica_slot(&key), &value)?;
            if self.trace_mode == OnChainTrace::ReadsAndWrites {
                self.bump_counter(ctx, &key)?;
            }
        }
        // NR→R transitions: insert fresh replicas.
        let n_to_r = dec.u64()? as usize;
        for _ in 0..n_to_r {
            let key = dec.bytes()?.to_vec();
            let value = dec.bytes()?.to_vec();
            ctx.sstore(&Self::replica_slot(&key), &value)?;
        }
        // R→NR transitions: evict replicas, leaving the slot warm for reuse.
        let n_to_nr = dec.u64()? as usize;
        for _ in 0..n_to_nr {
            let key = dec.bytes()?.to_vec();
            ctx.sstore(&Self::replica_slot(&key), EVICTED_MARKER)?;
        }
        Ok(Vec::new())
    }

    /// `gGet()` — internal call from a DU (read path, §3.3).
    fn g_get(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, VmError> {
        let mut dec = Decoder::new(input);
        let key = dec.bytes()?.to_vec();
        let cb_addr = dec.address()?;
        let cb_func = dec.string()?;
        if self.trace_mode != OnChainTrace::None {
            self.bump_counter(ctx, &key)?;
        }
        match ctx.sload(&Self::replica_slot(&key))? {
            Some(value) if value != EVICTED_MARKER => {
                // Replica hit: synchronous callback with the single record.
                let mut enc = Encoder::new();
                enc.bytes(&key).u64(1).bytes(&key).bytes(&value);
                ctx.call(cb_addr, &cb_func, &enc.finish())?;
                let mut out = Encoder::new();
                out.boolean(true);
                Ok(out.finish())
            }
            _ => {
                // Miss (or an evicted, slot-reuse marker): buffer the
                // request in the event log for the SP.
                let mut enc = Encoder::new();
                enc.bytes(&key).address(&cb_addr).string(&cb_func);
                ctx.emit("Request", enc.finish());
                let mut out = Encoder::new();
                out.boolean(false);
                Ok(out.finish())
            }
        }
    }

    /// `gScan()` — internal range query from a DU.
    fn g_scan(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, VmError> {
        let mut dec = Decoder::new(input);
        let start = dec.bytes()?.to_vec();
        let end = dec.bytes()?.to_vec();
        let cb_addr = dec.address()?;
        let cb_func = dec.string()?;
        if self.trace_mode != OnChainTrace::None {
            self.bump_counter(ctx, &start)?;
        }
        let mut enc = Encoder::new();
        enc.bytes(&start)
            .bytes(&end)
            .address(&cb_addr)
            .string(&cb_func);
        ctx.emit("RequestRange", enc.finish());
        Ok(Vec::new())
    }

    /// `deliver()` — the SP's proof-carrying response (read path, §3.3).
    fn deliver(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, VmError> {
        let mut dec = Decoder::new(input);
        let start = dec.bytes()?.to_vec();
        let end = dec.bytes()?.to_vec();
        let replicate = dec.boolean()?;
        let n_records = dec.u64()? as usize;
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let key = dec.bytes()?.to_vec();
            let value = dec.bytes()?.to_vec();
            records.push((key, value));
        }
        let proof = wire::decode_range_proof(&mut dec)?;
        let n_cbs = dec.u64()? as usize;
        let mut callbacks = Vec::with_capacity(n_cbs);
        for _ in 0..n_cbs {
            let addr = dec.address()?;
            let func = dec.string()?;
            callbacks.push((addr, func));
        }

        // Load the trusted digest.
        let root_bytes = ctx
            .sload(SLOT_ROOT)?
            .ok_or_else(|| VmError::Revert("no root digest on chain".into()))?;
        let mut root_arr = [0u8; 32];
        root_arr.copy_from_slice(&root_bytes[..32]);
        let root = Hash32::new(root_arr);

        // Charge Chash for every node the verifier recomputes (leaf and
        // inner preimages are ~3 words), then verify.
        let per_node = ctx.meter_schedule().hash_cost(3);
        ctx.charge(CostKind::Hash, per_node * proof.hash_count() as u64);
        let lo = ProofKey::new(ReplState::NotReplicated, start.clone());
        let hi = ProofKey::new(ReplState::NotReplicated, end.clone());
        let verified = proof
            .verify(&root, &lo, &hi)
            .map_err(|e| VmError::Revert(format!("proof rejected: {e}")))?;

        // The delivered plaintext records must match the verified hashes,
        // one-to-one and in order.
        if verified.len() != records.len() {
            return Err(VmError::Revert(format!(
                "record count mismatch: proof has {}, delivery has {}",
                verified.len(),
                records.len()
            )));
        }
        for ((pkey, vhash), (key, value)) in verified.iter().zip(&records) {
            if pkey.key != *key {
                return Err(VmError::Revert("delivered key not in proof".into()));
            }
            // Hashing the delivered value on-chain costs Chash.
            let cost = ctx
                .meter_schedule()
                .hash_cost(words_for_bytes(value.len()).max(1));
            ctx.charge(CostKind::Hash, cost);
            if record_value_hash(value) != *vhash {
                return Err(VmError::Revert(
                    "delivered value does not match proof".into(),
                ));
            }
        }

        // The paper's Listing 2 `replicate` flag: the control plane decided
        // this record should live on chain, so the delivery installs the
        // replica to serve the rest of the read burst. The value is already
        // authenticated; the DO formalizes or evicts the replica in its next
        // epoch update.
        if replicate {
            if let [(key, value)] = records.as_slice() {
                ctx.sstore(&Self::replica_slot(key), value)?;
            }
        }
        // Dispatch callbacks with the authenticated record set.
        for (addr, func) in &callbacks {
            let mut enc = Encoder::new();
            enc.bytes(&start).u64(records.len() as u64);
            for (key, value) in &records {
                enc.bytes(key).bytes(value);
            }
            ctx.call(*addr, func, &enc.finish())?;
        }
        let mut out = Encoder::new();
        out.u64(records.len() as u64);
        Ok(out.finish())
    }

    /// `root()` — view returning the stored digest (unmetered via
    /// `static_call` in tests).
    fn root(&self, ctx: &mut CallContext<'_>) -> Result<Vec<u8>, VmError> {
        let root = ctx.sload(SLOT_ROOT)?.unwrap_or_default();
        Ok(root)
    }
}

impl Contract for StorageManager {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        match func {
            "update" => self.update(ctx, input),
            "gGet" => self.g_get(ctx, input),
            "gScan" => self.g_scan(ctx, input),
            "deliver" => self.deliver(ctx, input),
            "root" => self.root(ctx),
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

/// Encodes the input of an `update()` transaction.
pub fn encode_update(
    digest: &Hash32,
    r_updates: &[(Vec<u8>, Vec<u8>)],
    to_r: &[(Vec<u8>, Vec<u8>)],
    to_nr: &[Vec<u8>],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.hash(digest);
    enc.u64(r_updates.len() as u64);
    for (k, v) in r_updates {
        enc.bytes(k).bytes(v);
    }
    enc.u64(to_r.len() as u64);
    for (k, v) in to_r {
        enc.bytes(k).bytes(v);
    }
    enc.u64(to_nr.len() as u64);
    for k in to_nr {
        enc.bytes(k);
    }
    enc.finish()
}

/// Encodes the input of a `gGet()` internal call.
pub fn encode_gget(key: &[u8], cb_addr: Address, cb_func: &str) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.bytes(key).address(&cb_addr).string(cb_func);
    enc.finish()
}

/// Encodes the input of a `gScan()` internal call.
pub fn encode_gscan(start: &[u8], end: &[u8], cb_addr: Address, cb_func: &str) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.bytes(start)
        .bytes(end)
        .address(&cb_addr)
        .string(cb_func);
    enc.finish()
}

/// Encodes the input of a `deliver()` transaction.
pub fn encode_deliver(
    start: &[u8],
    end: &[u8],
    replicate: bool,
    records: &[(Vec<u8>, Vec<u8>)],
    proof: &RangeProof,
    callbacks: &[(Address, String)],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.bytes(start).bytes(end).boolean(replicate);
    enc.u64(records.len() as u64);
    for (k, v) in records {
        enc.bytes(k).bytes(v);
    }
    wire::encode_range_proof(&mut enc, proof);
    enc.u64(callbacks.len() as u64);
    for (addr, func) in callbacks {
        enc.address(addr).string(func);
    }
    enc.finish()
}

/// A parsed `Request` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestEvent {
    /// Requested key.
    pub key: Vec<u8>,
    /// Callback contract.
    pub cb_addr: Address,
    /// Callback function.
    pub cb_func: String,
}

/// Parses a `Request` event payload.
///
/// # Errors
///
/// [`VmError::Decode`] if the payload is malformed.
pub fn decode_request(data: &[u8]) -> Result<RequestEvent, VmError> {
    let mut dec = Decoder::new(data);
    Ok(RequestEvent {
        key: dec.bytes()?.to_vec(),
        cb_addr: dec.address()?,
        cb_func: dec.string()?,
    })
}

/// A parsed `RequestRange` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRangeEvent {
    /// Range start key (inclusive).
    pub start: Vec<u8>,
    /// Range end key (inclusive).
    pub end: Vec<u8>,
    /// Callback contract.
    pub cb_addr: Address,
    /// Callback function.
    pub cb_func: String,
}

/// Parses a `RequestRange` event payload.
///
/// # Errors
///
/// [`VmError::Decode`] if the payload is malformed.
pub fn decode_request_range(data: &[u8]) -> Result<RequestRangeEvent, VmError> {
    let mut dec = Decoder::new(data);
    Ok(RequestRangeEvent {
        start: dec.bytes()?.to_vec(),
        end: dec.bytes()?.to_vec(),
        cb_addr: dec.address()?,
        cb_func: dec.string()?,
    })
}

/// A minimal data-consumer (DU) contract whose callback does no
/// application work — used to measure pure feed-layer Gas, as the paper's
/// microbenchmarks do.
#[derive(Debug)]
pub struct NullConsumer {
    manager: Address,
}

impl NullConsumer {
    /// A consumer bound to the storage manager at `manager`.
    pub fn new(manager: Address) -> Self {
        NullConsumer { manager }
    }
}

impl Contract for NullConsumer {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        match func {
            // batchRead(n, key...): issue n gGet internal calls.
            "batchRead" => {
                let mut dec = Decoder::new(input);
                let n = dec.u64()? as usize;
                for _ in 0..n {
                    let key = dec.bytes()?;
                    let payload = encode_gget(key, ctx.this, "onData");
                    ctx.call(self.manager, "gGet", &payload)?;
                }
                Ok(Vec::new())
            }
            // scan(start, end): one ranged query.
            "scan" => {
                let mut dec = Decoder::new(input);
                let start = dec.bytes()?.to_vec();
                let end = dec.bytes()?.to_vec();
                let payload = encode_gscan(&start, &end, ctx.this, "onData");
                ctx.call(self.manager, "gScan", &payload)?;
                Ok(Vec::new())
            }
            // onData(context, n, (key, value)...): the no-op callback.
            "onData" => Ok(Vec::new()),
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_chain::{Blockchain, Transaction};
    use grub_gas::Layer;
    use grub_merkle::MerkleKv;
    use std::rc::Rc;

    struct Fixture {
        chain: Blockchain,
        mgr: Address,
        du: Address,
        do_addr: Address,
        sp_addr: Address,
        tree: MerkleKv,
    }

    fn nr_key(key: &[u8]) -> ProofKey {
        ProofKey::new(ReplState::NotReplicated, key.to_vec())
    }

    fn setup(trace_mode: OnChainTrace) -> Fixture {
        let mut chain = Blockchain::new();
        let do_addr = Address::derive("DO");
        let sp_addr = Address::derive("SP");
        let mgr = Address::derive("storage-manager");
        let du = Address::derive("du");
        chain.deploy(
            mgr,
            Rc::new(StorageManager::new(do_addr, trace_mode)),
            Layer::Feed,
        );
        chain.deploy(du, Rc::new(NullConsumer::new(mgr)), Layer::Application);
        Fixture {
            chain,
            mgr,
            du,
            do_addr,
            sp_addr,
            tree: MerkleKv::new(),
        }
    }

    /// DO-side: push a record into the tree and send the digest (plus
    /// optional replica) on chain.
    fn do_update(fx: &mut Fixture, key: &[u8], value: &[u8], replicate: bool) {
        let state = if replicate {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        };
        fx.tree
            .insert(ProofKey::new(state, key.to_vec()), record_value_hash(value));
        let digest = fx.tree.root();
        let to_r: Vec<(Vec<u8>, Vec<u8>)> = if replicate {
            vec![(key.to_vec(), value.to_vec())]
        } else {
            Vec::new()
        };
        let input = encode_update(&digest, &[], &to_r, &[]);
        fx.chain.submit(Transaction::new(
            fx.do_addr,
            fx.mgr,
            "update",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
    }

    fn read_key(fx: &mut Fixture, key: &[u8]) {
        let mut enc = Encoder::new();
        enc.u64(1).bytes(key);
        fx.chain.submit(Transaction::new(
            Address::derive("user"),
            fx.du,
            "batchRead",
            enc.finish(),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
    }

    #[test]
    fn update_requires_data_owner() {
        let mut fx = setup(OnChainTrace::None);
        let input = encode_update(&Hash32::ZERO, &[], &[], &[]);
        fx.chain.submit(Transaction::new(
            Address::derive("mallory"),
            fx.mgr,
            "update",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(!block.receipts[0].success);
    }

    #[test]
    fn replica_hit_serves_synchronously() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"eth", b"150", true);
        read_key(&mut fx, b"eth");
        // No Request event: the replica answered.
        assert!(fx.chain.events_since(0, fx.mgr, "Request").is_empty());
    }

    #[test]
    fn replica_miss_emits_request() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"eth", b"150", false);
        read_key(&mut fx, b"eth");
        let events = fx.chain.events_since(0, fx.mgr, "Request");
        assert_eq!(events.len(), 1);
        let req = decode_request(&events[0].data).unwrap();
        assert_eq!(req.key, b"eth");
        assert_eq!(req.cb_addr, fx.du);
    }

    #[test]
    fn deliver_with_valid_proof_succeeds() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"eth", b"150", false);
        read_key(&mut fx, b"eth");
        let proof = fx.tree.prove_range(&nr_key(b"eth"), &nr_key(b"eth"));
        let input = encode_deliver(
            b"eth",
            b"eth",
            false,
            &[(b"eth".to_vec(), b"150".to_vec())],
            &proof,
            &[(fx.du, "onData".to_owned())],
        );
        fx.chain.submit(Transaction::new(
            fx.sp_addr,
            fx.mgr,
            "deliver",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
    }

    #[test]
    fn deliver_with_forged_value_reverts() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"eth", b"150", false);
        let proof = fx.tree.prove_range(&nr_key(b"eth"), &nr_key(b"eth"));
        let input = encode_deliver(
            b"eth",
            b"eth",
            false,
            &[(b"eth".to_vec(), b"9999".to_vec())], // forged price
            &proof,
            &[(fx.du, "onData".to_owned())],
        );
        fx.chain.submit(Transaction::new(
            fx.sp_addr,
            fx.mgr,
            "deliver",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(!block.receipts[0].success);
        assert!(block.receipts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("does not match proof"));
    }

    #[test]
    fn deliver_with_stale_proof_reverts() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"eth", b"150", false);
        let stale_proof = fx.tree.prove_range(&nr_key(b"eth"), &nr_key(b"eth"));
        // The DO updates the record; the on-chain digest moves on.
        do_update(&mut fx, b"eth", b"151", false);
        let input = encode_deliver(
            b"eth",
            b"eth",
            false,
            &[(b"eth".to_vec(), b"150".to_vec())], // replayed old value
            &stale_proof,
            &[(fx.du, "onData".to_owned())],
        );
        fx.chain.submit(Transaction::new(
            fx.sp_addr,
            fx.mgr,
            "deliver",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(!block.receipts[0].success, "replay must be rejected");
    }

    #[test]
    fn deliver_omitting_record_reverts() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"aaa", b"1", false);
        do_update(&mut fx, b"bbb", b"2", false);
        do_update(&mut fx, b"ccc", b"3", false);
        // Honest proof for the full range, but deliver claims only 2 records.
        let proof = fx.tree.prove_range(&nr_key(b"aaa"), &nr_key(b"ccc"));
        let input = encode_deliver(
            b"aaa",
            b"ccc",
            false,
            &[
                (b"aaa".to_vec(), b"1".to_vec()),
                (b"ccc".to_vec(), b"3".to_vec()),
            ],
            &proof,
            &[],
        );
        fx.chain.submit(Transaction::new(
            fx.sp_addr,
            fx.mgr,
            "deliver",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(!block.receipts[0].success);
    }

    #[test]
    fn eviction_removes_replica() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"eth", b"150", true);
        // R→NR transition.
        fx.tree
            .invalidate(&ProofKey::new(ReplState::Replicated, b"eth".to_vec()));
        fx.tree.insert(nr_key(b"eth"), record_value_hash(b"150"));
        let input = encode_update(&fx.tree.root(), &[], &[], &[b"eth".to_vec()]);
        fx.chain.submit(Transaction::new(
            fx.do_addr,
            fx.mgr,
            "update",
            input,
            Layer::Feed,
        ));
        fx.chain.produce_block();
        // Next read misses and emits a request.
        read_key(&mut fx, b"eth");
        assert_eq!(fx.chain.events_since(0, fx.mgr, "Request").len(), 1);
    }

    #[test]
    fn scan_emits_range_request_and_delivers() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"k1", b"v1", false);
        do_update(&mut fx, b"k2", b"v2", false);
        do_update(&mut fx, b"k3", b"v3", false);
        let mut enc = Encoder::new();
        enc.bytes(b"k1").bytes(b"k3");
        fx.chain.submit(Transaction::new(
            Address::derive("user"),
            fx.du,
            "scan",
            enc.finish(),
            Layer::User,
        ));
        fx.chain.produce_block();
        let events = fx.chain.events_since(0, fx.mgr, "RequestRange");
        assert_eq!(events.len(), 1);
        let req = decode_request_range(&events[0].data).unwrap();
        assert_eq!(
            (req.start.as_slice(), req.end.as_slice()),
            (b"k1".as_slice(), b"k3".as_slice())
        );
        // SP answers the whole range.
        let proof = fx.tree.prove_range(&nr_key(b"k1"), &nr_key(b"k3"));
        let input = encode_deliver(
            b"k1",
            b"k3",
            false,
            &[
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), b"v2".to_vec()),
                (b"k3".to_vec(), b"v3".to_vec()),
            ],
            &proof,
            &[(req.cb_addr, req.cb_func)],
        );
        fx.chain.submit(Transaction::new(
            fx.sp_addr,
            fx.mgr,
            "deliver",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
    }

    #[test]
    fn absent_key_deliverable_with_empty_result() {
        let mut fx = setup(OnChainTrace::None);
        do_update(&mut fx, b"aaa", b"1", false);
        do_update(&mut fx, b"zzz", b"2", false);
        let proof = fx.tree.prove_range(&nr_key(b"mmm"), &nr_key(b"mmm"));
        let input = encode_deliver(
            b"mmm",
            b"mmm",
            false,
            &[],
            &proof,
            &[(fx.du, "onData".to_owned())],
        );
        fx.chain.submit(Transaction::new(
            fx.sp_addr,
            fx.mgr,
            "deliver",
            input,
            Layer::Feed,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
    }

    #[test]
    fn on_chain_trace_mode_costs_more_per_read() {
        let mut plain = setup(OnChainTrace::None);
        do_update(&mut plain, b"eth", b"150", true);
        let before = plain.chain.meter().layer_total(Layer::Feed).amount();
        read_key(&mut plain, b"eth");
        let plain_cost = plain.chain.meter().layer_total(Layer::Feed).amount() - before;

        let mut traced = setup(OnChainTrace::Reads);
        do_update(&mut traced, b"eth", b"150", true);
        let before = traced.chain.meter().layer_total(Layer::Feed).amount();
        read_key(&mut traced, b"eth");
        let traced_cost = traced.chain.meter().layer_total(Layer::Feed).amount() - before;

        // BL3 pays at least one extra storage write (≥20000 on first bump).
        assert!(
            traced_cost >= plain_cost + 20_000,
            "plain {plain_cost} vs traced {traced_cost}"
        );
    }
}
