//! The storage provider (SP): off-chain storage, the ADS, and the watchdog
//! (paper §3.3, B.2.2).
//!
//! The SP persists every record in a [`grub_store::Db`] (the LevelDB role),
//! maintains the Merkle tree over the state-prefixed layout, and runs a
//! watchdog that polls the chain's event log for `Request` / `RequestRange`
//! events and answers them with proof-carrying `deliver` transactions.
//!
//! The SP is the protocol's adversary: [`AdversaryMode`] lets tests make it
//! forge values, omit records, hide leaves behind opaque digests, or replay
//! stale state — all of which the storage-manager contract must reject.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use grub_chain::{Address, Blockchain, Transaction};
use grub_gas::Layer;
use grub_merkle::{record_value_hash, MerkleKv, ProofKey, ProofNode, ReplState, TreeOp};
use grub_store::{Db, Options};

use crate::contract::{decode_request, decode_request_range, encode_deliver};
use crate::Result;

/// One off-chain synchronization step pushed from the DO (part of `gPuts`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpSync {
    /// Store `value` under `key` with the given replication state.
    Write {
        /// Data key.
        key: String,
        /// Record value.
        value: Vec<u8>,
        /// State prefix under which the record is filed.
        state: ReplState,
    },
    /// Move a key between state groups (R↔NR transition).
    Relocate {
        /// Data key.
        key: String,
        /// Old state.
        from: ReplState,
        /// New state.
        to: ReplState,
    },
}

/// Misbehaviours for security testing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdversaryMode {
    /// Follow the protocol.
    #[default]
    Honest,
    /// Tamper with delivered values (integrity attack).
    ForgeValue,
    /// Drop the last record from deliveries while keeping the honest proof
    /// (naive omission).
    OmitRecord,
    /// Collapse one in-range leaf to an opaque digest (crafted omission).
    HideLeaf,
    /// Serve proofs and values from a stale snapshot (replay/fork attack).
    ReplayStale,
}

static SP_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A frozen (tree, records) view served by a replaying adversary.
type StaleSnapshot = (MerkleKv, BTreeMap<Vec<u8>, Vec<u8>>);

/// The storage provider node.
pub struct StorageProvider {
    address: Address,
    db: Db,
    tree: MerkleKv,
    dir: PathBuf,
    /// Whether the store directory outlives this SP instance (crash-recovery
    /// mode). Ephemeral SPs — the default — clean up on drop.
    persistent: bool,
    watch_cursor: u64,
    mode: AdversaryMode,
    /// Snapshot for [`AdversaryMode::ReplayStale`].
    stale: Option<StaleSnapshot>,
    /// Latest replication decisions pushed from the DO's control plane:
    /// deliveries for keys marked [`ReplState::Replicated`] set the
    /// `replicate` flag (the paper's deliver-time replica installation).
    decision_hints: std::collections::HashMap<Vec<u8>, ReplState>,
    /// Cumulative Merkle nodes rehashed by the batched sync path — the
    /// observability counter behind `EpochMetrics::merkle_nodes_rehashed`.
    nodes_rehashed: u64,
}

impl StorageProvider {
    /// Creates an SP with a fresh on-disk store under the system temp dir.
    ///
    /// # Errors
    ///
    /// Propagates store-open failures.
    pub fn new(address: Address) -> Result<Self> {
        Self::new_with_options(address, Options::default())
    }

    /// Like [`StorageProvider::new`] with explicit store tuning knobs —
    /// crash-recovery tests shrink the memtable so SSTable flushes happen
    /// on small workloads.
    ///
    /// # Errors
    ///
    /// Propagates store-open failures.
    pub fn new_with_options(address: Address, options: Options) -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "grub-sp-{}-{}",
            std::process::id(),
            SP_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let db = Db::open(&dir, options)?;
        Ok(StorageProvider {
            address,
            db,
            tree: MerkleKv::new(),
            dir,
            persistent: false,
            watch_cursor: 0,
            mode: AdversaryMode::Honest,
            stale: None,
            decision_hints: std::collections::HashMap::new(),
            nodes_rehashed: 0,
        })
    }

    /// Opens an SP over a *persistent* store directory, surviving drops and
    /// reopenable across simulated process deaths.
    ///
    /// The Merkle tree is an in-memory structure, so on reopen it is rebuilt
    /// from a full store scan — the recovery path a real SP daemon would run
    /// at boot. A crash between a store write and the corresponding chain
    /// commit can leave the rebuilt tree *ahead* of the on-chain root; the
    /// scrubber reconciles exactly that divergence.
    ///
    /// # Errors
    ///
    /// Propagates store-open failures (including corrupt-table reports).
    pub fn open_at(address: Address, dir: impl Into<PathBuf>, options: Options) -> Result<Self> {
        let dir = dir.into();
        let db = Db::open(&dir, options)?;
        let mut tree = MerkleKv::new();
        // Batch-built: same shape (and root) as the sequential insert loop,
        // but every shared path is hashed once across the whole recovery
        // scan instead of once per record.
        let mut records = Vec::new();
        for (skey, value) in db.scan(None, None)? {
            let Some((state, key)) = parse_storage_key(&skey) else {
                continue;
            };
            records.push((
                ProofKey::new(state, key.into_bytes()),
                record_value_hash(&value),
            ));
        }
        tree.insert_batch(records);
        Ok(StorageProvider {
            address,
            db,
            tree,
            dir,
            persistent: true,
            watch_cursor: 0,
            mode: AdversaryMode::Honest,
            stale: None,
            decision_hints: std::collections::HashMap::new(),
            nodes_rehashed: 0,
        })
    }

    /// The store directory backing this SP.
    pub fn store_dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The SP's account address (sender of `deliver` transactions).
    pub fn address(&self) -> Address {
        self.address
    }

    /// Switches the adversary mode (takes a stale snapshot when entering
    /// [`AdversaryMode::ReplayStale`]).
    pub fn set_mode(&mut self, mode: AdversaryMode) {
        if mode == AdversaryMode::ReplayStale && self.stale.is_none() {
            let values = self
                .db
                .scan(None, None)
                .unwrap_or_default()
                .into_iter()
                .collect();
            self.stale = Some((self.tree.clone(), values));
        }
        self.mode = mode;
    }

    /// The SP's current root digest (must match the DO's mirror).
    pub fn root(&self) -> grub_crypto::Hash32 {
        self.tree.root()
    }

    /// Records the DO's current desired replication state for `key`; the
    /// next point delivery of that key carries the `replicate` flag.
    pub fn set_decision_hint(&mut self, key: &str, state: ReplState) {
        self.decision_hints.insert(key.as_bytes().to_vec(), state);
    }

    fn storage_key(state: ReplState, key: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + key.len());
        out.push(state.as_byte());
        out.extend_from_slice(key.as_bytes());
        out
    }

    /// Applies the DO's `gPuts` synchronization, in order.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn apply_sync(&mut self, ops: &[SpSync]) -> Result<()> {
        self.apply_sync_batch(ops.to_vec())
    }

    /// The owned hot-path variant of [`StorageProvider::apply_sync`]: store
    /// writes take the round's values by move (no per-record clone), and the
    /// whole round's tree mutations are applied as one deferred-hash
    /// [`MerkleKv::apply_batch`] — the root is byte-identical to the per-op
    /// insert/invalidate sequence, but shared root-to-leaf paths are hashed
    /// once per round.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn apply_sync_batch(&mut self, ops: Vec<SpSync>) -> Result<()> {
        let mut tree_ops = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                SpSync::Write { key, value, state } => {
                    let vhash = record_value_hash(&value);
                    self.db.put(Self::storage_key(state, &key), value)?;
                    tree_ops.push(TreeOp::Insert(
                        ProofKey::new(state, key.into_bytes()),
                        vhash,
                    ));
                }
                SpSync::Relocate { key, from, to } => {
                    let old = Self::storage_key(from, &key);
                    let value = self.db.get(&old)?.unwrap_or_default();
                    self.db.delete(&old)?;
                    let vhash = record_value_hash(&value);
                    self.db.put(Self::storage_key(to, &key), value)?;
                    tree_ops.push(TreeOp::Invalidate(ProofKey::new(
                        from,
                        key.as_bytes().to_vec(),
                    )));
                    tree_ops.push(TreeOp::Insert(ProofKey::new(to, key.into_bytes()), vhash));
                }
            }
        }
        self.nodes_rehashed += self.tree.apply_batch(tree_ops) as u64;
        Ok(())
    }

    /// Cumulative Merkle nodes rehashed by the batched sync path.
    pub fn nodes_rehashed(&self) -> u64 {
        self.nodes_rehashed
    }

    /// The store's cumulative read-path counters (block cache, bloom and
    /// key-span skips).
    pub fn read_stats(&self) -> grub_store::ReadStats {
        self.db.read_stats()
    }

    /// Scans the chain's event log for requests since the last poll and
    /// builds the `deliver` transactions answering them.
    ///
    /// Point requests for the same key within the window are coalesced into
    /// one delivery carrying all their callbacks.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn watchdog(&mut self, chain: &Blockchain, manager: Address) -> Result<Vec<Transaction>> {
        let mut point: BTreeMap<Vec<u8>, Vec<(Address, String)>> = BTreeMap::new();
        let mut ranges: Vec<(Vec<u8>, Vec<u8>, Address, String)> = Vec::new();
        for event in chain.events_since(self.watch_cursor, manager, "Request") {
            if let Ok(req) = decode_request(&event.data) {
                point
                    .entry(req.key)
                    .or_default()
                    .push((req.cb_addr, req.cb_func));
            }
        }
        for event in chain.events_since(self.watch_cursor, manager, "RequestRange") {
            if let Ok(req) = decode_request_range(&event.data) {
                ranges.push((req.start, req.end, req.cb_addr, req.cb_func));
            }
        }
        self.watch_cursor = chain.height();

        let mut txs = Vec::new();
        for (key, callbacks) in point {
            let replicate = self.decision_hints.get(&key) == Some(&ReplState::Replicated);
            txs.push(self.build_deliver(manager, key.clone(), key, replicate, callbacks)?);
        }
        for (start, end, cb_addr, cb_func) in ranges {
            txs.push(self.build_deliver(manager, start, end, false, vec![(cb_addr, cb_func)])?);
        }
        Ok(txs)
    }

    fn build_deliver(
        &mut self,
        manager: Address,
        start: Vec<u8>,
        end: Vec<u8>,
        replicate: bool,
        callbacks: Vec<(Address, String)>,
    ) -> Result<Transaction> {
        let lo = ProofKey::new(ReplState::NotReplicated, start.clone());
        let hi = ProofKey::new(ReplState::NotReplicated, end.clone());
        let (mut records, mut proof) = match (&self.mode, &self.stale) {
            (AdversaryMode::ReplayStale, Some((tree, values))) => {
                let proof = tree.prove_range(&lo, &hi);
                let records = Self::records_from_map(values, &start, &end);
                (records, proof)
            }
            _ => {
                let proof = self.tree.prove_range(&lo, &hi);
                let records = self.records_from_db(&start, &end)?;
                (records, proof)
            }
        };
        match self.mode {
            AdversaryMode::ForgeValue => {
                if let Some((_, v)) = records.first_mut() {
                    if v.is_empty() {
                        v.push(0xFF);
                    } else {
                        v[0] ^= 0xFF;
                    }
                }
            }
            AdversaryMode::OmitRecord => {
                records.pop();
            }
            AdversaryMode::HideLeaf => {
                if let Some((key, _)) = records.last() {
                    let target = ProofKey::new(ReplState::NotReplicated, key.clone());
                    if let Some(tree) = proof.tree.take() {
                        proof.tree = Some(hide_leaf(tree, &target));
                    }
                    records.pop();
                }
            }
            AdversaryMode::Honest | AdversaryMode::ReplayStale => {}
        }
        let input = encode_deliver(&start, &end, replicate, &records, &proof, &callbacks);
        Ok(Transaction::new(
            self.address,
            manager,
            "deliver",
            input,
            Layer::Feed,
        ))
    }

    fn records_from_db(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // NR-prefixed storage keys over [start, end] inclusive.
        let mut lo = vec![ReplState::NotReplicated.as_byte()];
        lo.extend_from_slice(start);
        if start == end {
            // Point request (the watchdog's hot path): a keyed get instead
            // of a range scan — the scan materializes every table's entries,
            // which is O(store) per deliver and quadratic over a streamed
            // run's lifetime.
            return Ok(self
                .db
                .get(&lo)?
                .map(|v| (start.to_vec(), v))
                .into_iter()
                .collect());
        }
        let mut hi = vec![ReplState::NotReplicated.as_byte()];
        hi.extend_from_slice(end);
        hi.push(0); // inclusive upper bound under an exclusive-scan API
        Ok(self
            .db
            .scan(Some(&lo), Some(&hi))?
            .into_iter()
            .map(|(k, v)| (k[1..].to_vec(), v))
            .collect())
    }

    fn records_from_map(
        values: &BTreeMap<Vec<u8>, Vec<u8>>,
        start: &[u8],
        end: &[u8],
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut lo = vec![ReplState::NotReplicated.as_byte()];
        lo.extend_from_slice(start);
        let mut hi = vec![ReplState::NotReplicated.as_byte()];
        hi.extend_from_slice(end);
        hi.push(0);
        values
            .range(lo..hi)
            .map(|(k, v)| (k[1..].to_vec(), v.clone()))
            .collect()
    }

    /// Raw store access for tests.
    pub fn value_of(&self, state: ReplState, key: &str) -> Option<Vec<u8>> {
        self.db.get(&Self::storage_key(state, key)).ok().flatten()
    }

    /// Every live record in the store, decoded to `(state, key, value)` and
    /// ordered by storage key — the scrubber's view of the SP's contents.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn live_records(&self) -> Result<Vec<(ReplState, String, Vec<u8>)>> {
        Ok(self
            .db
            .scan(None, None)?
            .into_iter()
            .filter_map(|(skey, value)| {
                parse_storage_key(&skey).map(|(state, key)| (state, key, value))
            })
            .collect())
    }

    /// Logical content digest of the store: SHA-256 over the ordered live
    /// `(storage key, value)` scan. Two stores with the same digest hold
    /// byte-identical record sets regardless of their physical layout
    /// (memtable vs. L0 vs. L1) — the store-equivalence oracle of the
    /// crash-recovery tests.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn state_digest(&self) -> Result<grub_crypto::Hash32> {
        let mut h = grub_crypto::Sha256::new();
        for (skey, value) in self.db.scan(None, None)? {
            h.update(&(skey.len() as u64).to_le_bytes());
            h.update(&skey);
            h.update(&(value.len() as u64).to_le_bytes());
            h.update(&value);
        }
        Ok(h.finalize())
    }

    /// Corrupts the stored value of `key` *without* touching the Merkle
    /// tree — simulating silent at-rest damage (bit rot, a buggy operator
    /// script) for scrubber tests. Honest code never calls this.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn tamper_value(&mut self, state: ReplState, key: &str, value: Vec<u8>) -> Result<()> {
        self.db.put(Self::storage_key(state, key), value)?;
        Ok(())
    }

    /// Deletes `key` from the store *without* touching the Merkle tree —
    /// the lost-record flavor of at-rest damage, for scrubber tests.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn tamper_remove(&mut self, state: ReplState, key: &str) -> Result<()> {
        self.db.delete(&Self::storage_key(state, key))?;
        Ok(())
    }

    /// Repairs one record to the authoritative `(state, value)`: removes any
    /// copy filed under a different state, rewrites the store, and re-inserts
    /// the tree leaf. The scrubber's fix-up primitive.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn repair_record(&mut self, key: &str, value: &[u8], state: ReplState) -> Result<()> {
        let other = match state {
            ReplState::Replicated => ReplState::NotReplicated,
            ReplState::NotReplicated => ReplState::Replicated,
        };
        if self.db.get(&Self::storage_key(other, key))?.is_some() {
            self.db.delete(&Self::storage_key(other, key))?;
        }
        self.tree
            .invalidate(&ProofKey::new(other, key.as_bytes().to_vec()));
        self.db.put(Self::storage_key(state, key), value.to_vec())?;
        self.tree.insert(
            ProofKey::new(state, key.as_bytes().to_vec()),
            record_value_hash(value),
        );
        Ok(())
    }

    /// Removes a record the authoritative state says must not exist (an
    /// orphan) from both the store and the tree. The scrubber's other
    /// fix-up primitive.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn remove_record(&mut self, state: ReplState, key: &str) -> Result<()> {
        self.db.delete(&Self::storage_key(state, key))?;
        self.tree
            .invalidate(&ProofKey::new(state, key.as_bytes().to_vec()));
        Ok(())
    }
}

/// Splits a raw storage key back into `(state, data key)`; `None` for keys
/// that are not state-prefixed UTF-8 (there are none in normal operation).
fn parse_storage_key(skey: &[u8]) -> Option<(ReplState, String)> {
    let (&state, rest) = skey.split_first()?;
    let state = ReplState::from_byte(state)?;
    let key = std::str::from_utf8(rest).ok()?.to_owned();
    Some((state, key))
}

fn hide_leaf(node: ProofNode, target: &ProofKey) -> ProofNode {
    match node {
        ProofNode::Leaf { pkey, vhash, valid } if pkey == *target => {
            ProofNode::Opaque(grub_merkle::leaf_hash(&pkey, &vhash, valid))
        }
        ProofNode::Inner { left, right } => ProofNode::Inner {
            left: Box::new(hide_leaf(*left, target)),
            right: Box::new(hide_leaf(*right, target)),
        },
        other => other,
    }
}

impl Drop for StorageProvider {
    fn drop(&mut self) {
        if !self.persistent {
            std::fs::remove_dir_all(&self.dir).ok();
        }
    }
}

impl std::fmt::Debug for StorageProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageProvider")
            .field("address", &self.address)
            .field("records", &self.tree.len())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> StorageProvider {
        StorageProvider::new(Address::derive("SP")).unwrap()
    }

    fn write(key: &str, value: &[u8], state: ReplState) -> SpSync {
        SpSync::Write {
            key: key.to_owned(),
            value: value.to_vec(),
            state,
        }
    }

    #[test]
    fn sync_updates_tree_and_store() {
        let mut sp = sp();
        sp.apply_sync(&[write("a", b"1", ReplState::NotReplicated)])
            .unwrap();
        assert_eq!(
            sp.value_of(ReplState::NotReplicated, "a"),
            Some(b"1".to_vec())
        );
        assert!(sp
            .tree
            .get(&ProofKey::new(ReplState::NotReplicated, b"a".to_vec()))
            .is_some());
    }

    #[test]
    fn relocate_moves_between_groups() {
        let mut sp = sp();
        sp.apply_sync(&[
            write("a", b"1", ReplState::NotReplicated),
            SpSync::Relocate {
                key: "a".into(),
                from: ReplState::NotReplicated,
                to: ReplState::Replicated,
            },
        ])
        .unwrap();
        assert_eq!(sp.value_of(ReplState::NotReplicated, "a"), None);
        assert_eq!(sp.value_of(ReplState::Replicated, "a"), Some(b"1".to_vec()));
    }

    #[test]
    fn sp_root_matches_do_mirror_after_same_ops() {
        use crate::owner::DataOwner;
        use crate::policy::Memoryless;
        let mut sp = sp();
        let mut owner = DataOwner::new(Address::derive("DO"), Box::new(Memoryless::new(2)));
        owner.observe_write("k1", b"v1".to_vec());
        owner.observe_write("k2", b"v2".to_vec());
        let flush = owner.flush_epoch();
        sp.apply_sync(&flush.sp_sync).unwrap();
        assert_eq!(sp.root(), owner.root());
        // Now drive a transition.
        owner.observe_read("k1");
        owner.observe_read("k1");
        let flush = owner.flush_epoch();
        sp.apply_sync(&flush.sp_sync).unwrap();
        assert_eq!(sp.root(), owner.root());
    }

    #[test]
    fn range_records_are_exact() {
        let mut sp = sp();
        sp.apply_sync(&[
            write("a", b"1", ReplState::NotReplicated),
            write("b", b"2", ReplState::NotReplicated),
            write("c", b"3", ReplState::Replicated),
            write("d", b"4", ReplState::NotReplicated),
        ])
        .unwrap();
        let records = sp.records_from_db(b"a", b"c").unwrap();
        // Only NR records in [a, c]: "c" is replicated and excluded.
        assert_eq!(
            records,
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );
    }
}
