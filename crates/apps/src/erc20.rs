//! A minimal ERC-20 token contract for the case-study applications.
//!
//! Implements the standard balance/allowance bookkeeping in Gas-metered
//! contract storage: `transfer`, `approve`, `transferFrom`, plus
//! `mint`/`burn` restricted to a configured minter (the issuer contract).

use grub_chain::codec::{Decoder, Encoder};
use grub_chain::{Address, CallContext, Contract, VmError};

/// The ERC-20 token contract.
#[derive(Debug)]
pub struct Erc20 {
    minter: Address,
}

impl Erc20 {
    /// Creates a token whose supply is controlled by `minter`.
    pub fn new(minter: Address) -> Self {
        Erc20 { minter }
    }

    fn balance_slot(addr: &Address) -> Vec<u8> {
        let mut out = b"bal:".to_vec();
        out.extend_from_slice(addr.as_bytes());
        out
    }

    fn allowance_slot(owner: &Address, spender: &Address) -> Vec<u8> {
        let mut out = b"alw:".to_vec();
        out.extend_from_slice(owner.as_bytes());
        out.extend_from_slice(spender.as_bytes());
        out
    }

    fn balance(ctx: &mut CallContext<'_>, addr: &Address) -> Result<u64, VmError> {
        Ok(ctx.sload_u64(&Self::balance_slot(addr))?.unwrap_or(0))
    }

    fn set_balance(ctx: &mut CallContext<'_>, addr: &Address, amount: u64) -> Result<(), VmError> {
        ctx.sstore_u64(&Self::balance_slot(addr), amount)
    }

    fn move_tokens(
        ctx: &mut CallContext<'_>,
        from: &Address,
        to: &Address,
        amount: u64,
    ) -> Result<(), VmError> {
        let from_balance = Self::balance(ctx, from)?;
        if from_balance < amount {
            return Err(VmError::Revert(format!(
                "insufficient balance: {from_balance} < {amount}"
            )));
        }
        let to_balance = Self::balance(ctx, to)?;
        Self::set_balance(ctx, from, from_balance - amount)?;
        Self::set_balance(ctx, to, to_balance + amount)?;
        Ok(())
    }
}

impl Contract for Erc20 {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        let mut dec = Decoder::new(input);
        match func {
            "mint" => {
                if ctx.caller != self.minter {
                    return Err(VmError::Unauthorized);
                }
                let to = dec.address()?;
                let amount = dec.u64()?;
                let balance = Self::balance(ctx, &to)?;
                Self::set_balance(ctx, &to, balance + amount)?;
                let supply = ctx.sload_u64(b"supply")?.unwrap_or(0);
                ctx.sstore_u64(b"supply", supply + amount)?;
                Ok(Vec::new())
            }
            "burn" => {
                if ctx.caller != self.minter {
                    return Err(VmError::Unauthorized);
                }
                let from = dec.address()?;
                let amount = dec.u64()?;
                let balance = Self::balance(ctx, &from)?;
                if balance < amount {
                    return Err(VmError::Revert("burn exceeds balance".into()));
                }
                Self::set_balance(ctx, &from, balance - amount)?;
                let supply = ctx.sload_u64(b"supply")?.unwrap_or(0);
                ctx.sstore_u64(b"supply", supply - amount)?;
                Ok(Vec::new())
            }
            "transfer" => {
                let to = dec.address()?;
                let amount = dec.u64()?;
                let from = ctx.caller;
                Self::move_tokens(ctx, &from, &to, amount)?;
                Ok(Vec::new())
            }
            "approve" => {
                let spender = dec.address()?;
                let amount = dec.u64()?;
                let owner = ctx.caller;
                ctx.sstore_u64(&Self::allowance_slot(&owner, &spender), amount)?;
                Ok(Vec::new())
            }
            "transferFrom" => {
                let owner = dec.address()?;
                let to = dec.address()?;
                let amount = dec.u64()?;
                let spender = ctx.caller;
                let slot = Self::allowance_slot(&owner, &spender);
                let allowance = ctx.sload_u64(&slot)?.unwrap_or(0);
                if allowance < amount {
                    return Err(VmError::Revert("allowance exceeded".into()));
                }
                ctx.sstore_u64(&slot, allowance - amount)?;
                Self::move_tokens(ctx, &owner, &to, amount)?;
                Ok(Vec::new())
            }
            "balanceOf" => {
                let addr = dec.address()?;
                let balance = Self::balance(ctx, &addr)?;
                let mut enc = Encoder::new();
                enc.u64(balance);
                Ok(enc.finish())
            }
            "totalSupply" => {
                let supply = ctx.sload_u64(b"supply")?.unwrap_or(0);
                let mut enc = Encoder::new();
                enc.u64(supply);
                Ok(enc.finish())
            }
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

/// Encodes `(address, amount)` — the input shape shared by `mint`, `burn`
/// and `transfer`.
pub fn encode_addr_amount(addr: Address, amount: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.address(&addr).u64(amount);
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_chain::{Blockchain, Transaction};
    use grub_gas::Layer;
    use std::rc::Rc;

    struct Fx {
        chain: Blockchain,
        token: Address,
        minter: Address,
        alice: Address,
        bob: Address,
    }

    fn setup() -> Fx {
        let mut chain = Blockchain::new();
        let minter = Address::derive("minter");
        let token = Address::derive("token");
        chain.deploy(token, Rc::new(Erc20::new(minter)), Layer::Application);
        Fx {
            chain,
            token,
            minter,
            alice: Address::derive("alice"),
            bob: Address::derive("bob"),
        }
    }

    fn call(fx: &mut Fx, from: Address, func: &str, input: Vec<u8>) -> bool {
        fx.chain
            .submit(Transaction::new(from, fx.token, func, input, Layer::User));
        fx.chain.produce_block().receipts[0].success
    }

    fn balance(fx: &Fx, addr: Address) -> u64 {
        let mut enc = Encoder::new();
        enc.address(&addr);
        let out = fx
            .chain
            .static_call(addr, fx.token, "balanceOf", &enc.finish())
            .unwrap();
        Decoder::new(&out).u64().unwrap()
    }

    #[test]
    fn mint_transfer_burn_lifecycle() {
        let mut fx = setup();
        let (minter, alice, bob) = (fx.minter, fx.alice, fx.bob);
        assert!(call(
            &mut fx,
            minter,
            "mint",
            encode_addr_amount(alice, 100)
        ));
        assert_eq!(balance(&fx, alice), 100);
        assert!(call(
            &mut fx,
            alice,
            "transfer",
            encode_addr_amount(bob, 40)
        ));
        assert_eq!(balance(&fx, alice), 60);
        assert_eq!(balance(&fx, bob), 40);
        assert!(call(&mut fx, minter, "burn", encode_addr_amount(bob, 40)));
        assert_eq!(balance(&fx, bob), 0);
    }

    #[test]
    fn only_minter_can_mint() {
        let mut fx = setup();
        let (alice, _) = (fx.alice, fx.bob);
        assert!(!call(
            &mut fx,
            alice,
            "mint",
            encode_addr_amount(alice, 100)
        ));
        assert_eq!(balance(&fx, alice), 0);
    }

    #[test]
    fn overdraft_reverts_atomically() {
        let mut fx = setup();
        let (minter, alice, bob) = (fx.minter, fx.alice, fx.bob);
        call(&mut fx, minter, "mint", encode_addr_amount(alice, 10));
        assert!(!call(
            &mut fx,
            alice,
            "transfer",
            encode_addr_amount(bob, 11)
        ));
        assert_eq!(balance(&fx, alice), 10);
        assert_eq!(balance(&fx, bob), 0);
    }

    #[test]
    fn transfer_from_respects_allowance() {
        let mut fx = setup();
        let (minter, alice, bob) = (fx.minter, fx.alice, fx.bob);
        call(&mut fx, minter, "mint", encode_addr_amount(alice, 100));
        // Alice approves Bob for 30.
        assert!(call(&mut fx, alice, "approve", encode_addr_amount(bob, 30)));
        let mut enc = Encoder::new();
        enc.address(&alice).address(&bob).u64(20);
        assert!(call(&mut fx, bob, "transferFrom", enc.finish()));
        assert_eq!(balance(&fx, bob), 20);
        // Second pull exceeding the remaining allowance fails.
        let mut enc = Encoder::new();
        enc.address(&alice).address(&bob).u64(20);
        assert!(!call(&mut fx, bob, "transferFrom", enc.finish()));
    }

    #[test]
    fn supply_tracks_mints_and_burns() {
        let mut fx = setup();
        let (minter, alice) = (fx.minter, fx.alice);
        call(&mut fx, minter, "mint", encode_addr_amount(alice, 70));
        call(&mut fx, minter, "burn", encode_addr_amount(alice, 20));
        let out = fx
            .chain
            .static_call(alice, fx.token, "totalSupply", &[])
            .unwrap();
        assert_eq!(Decoder::new(&out).u64().unwrap(), 50);
    }
}
