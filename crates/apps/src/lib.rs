//! Case-study applications on GRuB (paper §4).
//!
//! Two end-to-end data consumers exercise the feed exactly as the paper's
//! evaluation does:
//!
//! * [`scoin`] — **SCoin**, a minimalist MakerDAO-style stablecoin: an
//!   [`erc20`] token whose issuance and redemption read the Ether price from
//!   a GRuB price feed via `gGet` callbacks (§4.1, Table 3 / Figure 5);
//! * [`pegged`] — a Bitcoin-pegged token over a **BtcRelay-style side-chain
//!   feed**: the DO feeds [`bitcoin`] block headers onto the chain, and
//!   `mint`/`burn` verify SPV inclusion proofs against six confirmed headers
//!   read from the feed (§4.2, Figure 6).
//!
//! Both applications are ordinary [`grub_chain::Contract`]s whose Gas lands
//! in the application layer, reproducing the paper's feed-vs-application
//! split.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitcoin;
pub mod erc20;
pub mod pegged;
pub mod scoin;
