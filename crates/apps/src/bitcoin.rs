//! A Bitcoin block-header chain simulator with SPV proofs (paper §4.2
//! substrate).
//!
//! BtcRelay feeds 80-byte Bitcoin block headers onto Ethereum; pegged tokens
//! verify deposit/redeem transactions against those headers with Simplified
//! Payment Verification (SPV) Merkle proofs. This module builds the closest
//! synthetic equivalent: structurally faithful headers (version, previous
//! hash, transaction Merkle root, time, bits, nonce; double-SHA256 block
//! hash) over synthetic transaction sets, **without proof-of-work grinding**
//! — difficulty is irrelevant to the Gas evaluation, and the feed's DO is
//! trusted to relay real headers (DESIGN.md §3).

use grub_crypto::{sha256, Hash32, Sha256};

/// A Bitcoin block header (80 bytes serialized).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Protocol version.
    pub version: u32,
    /// Hash of the previous block header.
    pub prev_hash: Hash32,
    /// Root of the transaction Merkle tree.
    pub merkle_root: Hash32,
    /// Unix timestamp.
    pub time: u32,
    /// Compact difficulty target.
    pub bits: u32,
    /// Nonce (not ground — see module docs).
    pub nonce: u32,
}

impl BlockHeader {
    /// Serializes to the canonical 80-byte wire format.
    pub fn to_bytes(&self) -> [u8; 80] {
        let mut out = [0u8; 80];
        out[0..4].copy_from_slice(&self.version.to_le_bytes());
        out[4..36].copy_from_slice(self.prev_hash.as_bytes());
        out[36..68].copy_from_slice(self.merkle_root.as_bytes());
        out[68..72].copy_from_slice(&self.time.to_le_bytes());
        out[72..76].copy_from_slice(&self.bits.to_le_bytes());
        out[76..80].copy_from_slice(&self.nonce.to_le_bytes());
        out
    }

    /// Parses the 80-byte wire format.
    pub fn from_bytes(bytes: &[u8]) -> Option<BlockHeader> {
        if bytes.len() != 80 {
            return None;
        }
        let mut prev = [0u8; 32];
        prev.copy_from_slice(&bytes[4..36]);
        let mut root = [0u8; 32];
        root.copy_from_slice(&bytes[36..68]);
        Some(BlockHeader {
            version: u32::from_le_bytes(bytes[0..4].try_into().ok()?),
            prev_hash: Hash32::new(prev),
            merkle_root: Hash32::new(root),
            time: u32::from_le_bytes(bytes[68..72].try_into().ok()?),
            bits: u32::from_le_bytes(bytes[72..76].try_into().ok()?),
            nonce: u32::from_le_bytes(bytes[76..80].try_into().ok()?),
        })
    }

    /// The block hash: `SHA256(SHA256(header))`, Bitcoin's double hash.
    pub fn block_hash(&self) -> Hash32 {
        sha256d(&self.to_bytes())
    }
}

/// Bitcoin's double-SHA256.
pub fn sha256d(data: &[u8]) -> Hash32 {
    sha256(sha256(data).as_bytes())
}

/// A Merkle inclusion proof for a transaction (SPV proof).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpvProof {
    /// Sibling hashes from the txid up to the root.
    pub siblings: Vec<Hash32>,
    /// For each level, whether the sibling is on the left.
    pub lefts: Vec<bool>,
}

impl SpvProof {
    /// Recomputes the Merkle root implied by `txid` and this path.
    pub fn root_for(&self, txid: &Hash32) -> Hash32 {
        let mut acc = *txid;
        for (sibling, left) in self.siblings.iter().zip(&self.lefts) {
            let mut h = Sha256::new();
            if *left {
                h.update(sibling.as_bytes());
                h.update(acc.as_bytes());
            } else {
                h.update(acc.as_bytes());
                h.update(sibling.as_bytes());
            }
            acc = sha256(h.finalize().as_bytes()); // double hash per level
        }
        acc
    }

    /// Checks the proof against a header's Merkle root.
    pub fn verify(&self, txid: &Hash32, header: &BlockHeader) -> bool {
        self.root_for(txid) == header.merkle_root
    }

    /// Serialized length in bytes (for Gas payload accounting).
    pub fn encoded_len(&self) -> usize {
        8 + self.siblings.len() * 33
    }
}

/// Builds the Bitcoin-style transaction Merkle tree (odd nodes pair with
/// themselves) and returns `(root, proofs[i] for each txid)`.
pub fn merkle_tree(txids: &[Hash32]) -> (Hash32, Vec<SpvProof>) {
    assert!(!txids.is_empty(), "a block has at least a coinbase tx");
    let mut proofs: Vec<SpvProof> = txids
        .iter()
        .map(|_| SpvProof {
            siblings: Vec::new(),
            lefts: Vec::new(),
        })
        .collect();
    // positions[i] = index of txid i's running hash in the current level.
    let mut level: Vec<Hash32> = txids.to_vec();
    let mut positions: Vec<usize> = (0..txids.len()).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let (l, r) = (pair[0], *pair.get(1).unwrap_or(&pair[0]));
            let mut h = Sha256::new();
            h.update(l.as_bytes());
            h.update(r.as_bytes());
            next.push(sha256(h.finalize().as_bytes()));
        }
        for (i, proof) in proofs.iter_mut().enumerate() {
            let pos = positions[i];
            let sibling_pos = pos ^ 1;
            let sibling = *level.get(sibling_pos).unwrap_or(&level[pos]);
            proof.siblings.push(sibling);
            proof.lefts.push(pos % 2 == 1);
        }
        for pos in positions.iter_mut() {
            *pos /= 2;
        }
        level = next;
    }
    (level[0], proofs)
}

/// A deterministic synthetic Bitcoin chain.
#[derive(Debug)]
pub struct BitcoinSim {
    headers: Vec<BlockHeader>,
    /// txids per block, so deposits can be proven later.
    txids: Vec<Vec<Hash32>>,
    proofs: Vec<Vec<SpvProof>>,
    seed: u64,
}

impl BitcoinSim {
    /// Creates a chain with only parameters (no blocks yet).
    pub fn new(seed: u64) -> Self {
        BitcoinSim {
            headers: Vec::new(),
            txids: Vec::new(),
            proofs: Vec::new(),
            seed,
        }
    }

    /// Mines the next block containing `tx_count` synthetic transactions,
    /// returning its height.
    pub fn mine_block(&mut self, tx_count: usize) -> usize {
        let height = self.headers.len();
        let txids: Vec<Hash32> = (0..tx_count.max(1))
            .map(|i| {
                let mut h = Sha256::new();
                h.update(b"btc-tx");
                h.update(&self.seed.to_le_bytes());
                h.update(&(height as u64).to_le_bytes());
                h.update(&(i as u64).to_le_bytes());
                sha256d(h.finalize().as_bytes())
            })
            .collect();
        let (root, proofs) = merkle_tree(&txids);
        let prev_hash = self
            .headers
            .last()
            .map(|h| h.block_hash())
            .unwrap_or(Hash32::ZERO);
        self.headers.push(BlockHeader {
            version: 0x2000_0000,
            prev_hash,
            merkle_root: root,
            time: 1_300_000_000 + height as u32 * 600,
            bits: 0x1d00_ffff,
            nonce: height as u32,
        });
        self.txids.push(txids);
        self.proofs.push(proofs);
        height
    }

    /// Header at `height`.
    pub fn header(&self, height: usize) -> Option<&BlockHeader> {
        self.headers.get(height)
    }

    /// Chain tip height (`None` when empty).
    pub fn tip(&self) -> Option<usize> {
        self.headers.len().checked_sub(1)
    }

    /// A `(txid, proof)` pair for transaction `tx` of block `height`.
    pub fn spv_proof(&self, height: usize, tx: usize) -> Option<(Hash32, SpvProof)> {
        Some((
            *self.txids.get(height)?.get(tx)?,
            self.proofs.get(height)?.get(tx)?.clone(),
        ))
    }

    /// Validates the hash chaining of the whole header sequence.
    pub fn validate_links(&self) -> bool {
        self.headers
            .windows(2)
            .all(|w| w[1].prev_hash == w[0].block_hash())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_wire_format() {
        let mut sim = BitcoinSim::new(7);
        sim.mine_block(3);
        let header = sim.header(0).unwrap().clone();
        let parsed = BlockHeader::from_bytes(&header.to_bytes()).unwrap();
        assert_eq!(parsed, header);
        assert_eq!(parsed.block_hash(), header.block_hash());
        assert!(BlockHeader::from_bytes(&[0u8; 79]).is_none());
    }

    #[test]
    fn chain_links_are_valid() {
        let mut sim = BitcoinSim::new(1);
        for i in 0..20 {
            sim.mine_block(1 + i % 5);
        }
        assert!(sim.validate_links());
        assert_eq!(sim.tip(), Some(19));
    }

    #[test]
    fn spv_proof_verifies_against_header() {
        let mut sim = BitcoinSim::new(3);
        sim.mine_block(7);
        for tx in 0..7 {
            let (txid, proof) = sim.spv_proof(0, tx).unwrap();
            assert!(
                proof.verify(&txid, sim.header(0).unwrap()),
                "tx {tx} proof fails"
            );
        }
    }

    #[test]
    fn spv_proof_rejects_wrong_tx_or_block() {
        let mut sim = BitcoinSim::new(4);
        sim.mine_block(4);
        sim.mine_block(4);
        let (txid, proof) = sim.spv_proof(0, 1).unwrap();
        assert!(!proof.verify(&sha256d(b"fake"), sim.header(0).unwrap()));
        assert!(!proof.verify(&txid, sim.header(1).unwrap()));
    }

    #[test]
    fn single_tx_block_has_empty_proof() {
        let mut sim = BitcoinSim::new(5);
        sim.mine_block(1);
        let (txid, proof) = sim.spv_proof(0, 0).unwrap();
        assert!(proof.siblings.is_empty());
        assert_eq!(proof.root_for(&txid), sim.header(0).unwrap().merkle_root);
    }

    #[test]
    fn odd_tx_counts_pair_with_self() {
        let mut sim = BitcoinSim::new(6);
        sim.mine_block(5);
        for tx in 0..5 {
            let (txid, proof) = sim.spv_proof(0, tx).unwrap();
            assert!(proof.verify(&txid, sim.header(0).unwrap()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = BitcoinSim::new(9);
        let mut b = BitcoinSim::new(9);
        a.mine_block(3);
        b.mine_block(3);
        assert_eq!(a.header(0), b.header(0));
        let mut c = BitcoinSim::new(10);
        c.mine_block(3);
        assert_ne!(a.header(0), c.header(0));
    }
}
