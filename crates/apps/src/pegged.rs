//! A Bitcoin-pegged ERC-20 token over a BtcRelay-style side-chain feed
//! (paper §4.2).
//!
//! The data owner relays Bitcoin block headers into a GRuB feed under keys
//! `blk%08d`. The [`PeggedToken`] contract mints tokens when a Bitcoin
//! deposit transaction is proven:
//!
//! 1. `mint(beneficiary, amount, height, txid, spvProof)` records a pending
//!    request and asks the feed for header `height`;
//! 2. each `onHeader` callback verifies the arriving header — the SPV
//!    Merkle proof for the deposit block, hash-chain linkage for the
//!    confirmations — and requests the next header;
//! 3. after [`CONFIRMATIONS`] linked headers the tokens are minted.
//!
//! `burn` runs the same verification for a Bitcoin redeem transaction before
//! destroying tokens. When headers are replicated on chain the whole
//! confirmation walk completes synchronously inside the `mint` transaction;
//! when they are not, each step costs one `request`/`deliver` round trip —
//! exactly the Gas trade-off GRuB's adaptive replication navigates in the
//! paper's Figure 6.

use grub_chain::codec::{Decoder, Encoder};
use grub_chain::{Address, CallContext, Contract, VmError};
use grub_crypto::Hash32;

use crate::bitcoin::{BlockHeader, SpvProof};
use crate::erc20;

/// Confirmation depth, as in BtcRelay-based tokens.
pub const CONFIRMATIONS: u64 = 6;

/// Feed key for a Bitcoin block height.
pub fn block_key(height: u64) -> Vec<u8> {
    format!("blk{height:08}").into_bytes()
}

/// Parses a feed key back into a height.
pub fn parse_block_key(key: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(key).ok()?;
    s.strip_prefix("blk")?.parse().ok()
}

/// Encodes an [`SpvProof`] for calldata.
pub fn encode_spv(enc: &mut Encoder, proof: &SpvProof) {
    enc.u64(proof.siblings.len() as u64);
    for (sibling, left) in proof.siblings.iter().zip(&proof.lefts) {
        enc.hash(sibling);
        enc.boolean(*left);
    }
}

/// Decodes an [`SpvProof`] from calldata.
///
/// # Errors
///
/// [`VmError::Decode`] on truncated input.
pub fn decode_spv(dec: &mut Decoder<'_>) -> Result<SpvProof, VmError> {
    let n = dec.u64()? as usize;
    if n > 10_000 {
        return Err(VmError::Decode("absurd SPV proof".into()));
    }
    let mut siblings = Vec::with_capacity(n);
    let mut lefts = Vec::with_capacity(n);
    for _ in 0..n {
        siblings.push(dec.hash()?);
        lefts.push(dec.boolean()?);
    }
    Ok(SpvProof { siblings, lefts })
}

/// The Bitcoin-pegged token's minting contract.
#[derive(Debug)]
pub struct PeggedToken {
    manager: Address,
    token: Address,
}

impl PeggedToken {
    /// Binds to the storage manager (the header feed) and the ERC-20 token.
    pub fn new(manager: Address, token: Address) -> Self {
        PeggedToken { manager, token }
    }

    fn pending_slot(txid: &Hash32) -> Vec<u8> {
        let mut out = b"pend:".to_vec();
        out.extend_from_slice(txid.as_bytes());
        out
    }

    fn request_header(
        ctx: &mut CallContext<'_>,
        manager: Address,
        height: u64,
    ) -> Result<(), VmError> {
        let payload = grub_core::contract::encode_gget(&block_key(height), ctx.this, "onHeader");
        ctx.call(manager, "gGet", &payload)?;
        Ok(())
    }

    fn start(
        &self,
        ctx: &mut CallContext<'_>,
        input: &[u8],
        is_burn: bool,
    ) -> Result<Vec<u8>, VmError> {
        let mut dec = Decoder::new(input);
        let account = dec.address()?;
        let amount = dec.u64()?;
        let height = dec.u64()?;
        let txid = dec.hash()?;
        let proof = decode_spv(&mut dec)?;
        if amount == 0 {
            return Err(VmError::Revert("zero amount".into()));
        }
        // Persist the pending verification walk.
        let mut enc = Encoder::new();
        enc.address(&account)
            .u64(amount)
            .u64(height)
            .u64(0) // confirmations so far
            .hash(&Hash32::ZERO) // expected block hash (unknown yet)
            .boolean(is_burn);
        encode_spv(&mut enc, &proof);
        ctx.sstore(&Self::pending_slot(&txid), &enc.finish())?;
        // Track the txid under the height so onHeader can find it.
        let mut ids = ctx.sload(b"pending-ids")?.unwrap_or_default();
        ids.extend_from_slice(txid.as_bytes());
        ctx.sstore(b"pending-ids", &ids)?;
        Self::request_header(ctx, self.manager, height)?;
        Ok(Vec::new())
    }

    /// Processes one delivered header for one pending request. Returns
    /// whether the request completed (minted/burned or failed permanently).
    fn advance(
        &self,
        ctx: &mut CallContext<'_>,
        txid: Hash32,
        header_height: u64,
        header: &BlockHeader,
    ) -> Result<bool, VmError> {
        let slot = Self::pending_slot(&txid);
        let Some(entry) = ctx.sload(&slot)? else {
            return Ok(false);
        };
        let mut dec = Decoder::new(&entry);
        let account = dec.address()?;
        let amount = dec.u64()?;
        let deposit_height = dec.u64()?;
        let confirmed = dec.u64()?;
        let expected = dec.hash()?;
        let is_burn = dec.boolean()?;
        let proof = decode_spv(&mut dec)?;
        // Only the next height in the walk advances this request.
        if header_height != deposit_height + confirmed {
            return Ok(false);
        }
        if confirmed == 0 {
            // The deposit block itself: check SPV inclusion.
            if !proof.verify(&txid, header) {
                ctx.sdelete(&slot)?;
                return Err(VmError::Revert("SPV proof rejected".into()));
            }
        } else if header.prev_hash != expected {
            // A confirmation block must extend the previous one.
            ctx.sdelete(&slot)?;
            return Err(VmError::Revert("confirmation chain broken".into()));
        }
        let confirmed = confirmed + 1;
        if confirmed >= CONFIRMATIONS {
            ctx.sdelete(&slot)?;
            let action = if is_burn { "burn" } else { "mint" };
            ctx.call(
                self.token,
                action,
                &erc20::encode_addr_amount(account, amount),
            )?;
            return Ok(true);
        }
        // Persist progress and ask for the next header.
        let mut enc = Encoder::new();
        enc.address(&account)
            .u64(amount)
            .u64(deposit_height)
            .u64(confirmed)
            .hash(&header.block_hash())
            .boolean(is_burn);
        encode_spv(&mut enc, &proof);
        ctx.sstore(&slot, &enc.finish())?;
        Self::request_header(ctx, self.manager, deposit_height + confirmed)?;
        Ok(false)
    }
}

impl Contract for PeggedToken {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        match func {
            "mint" => self.start(ctx, input, false),
            "burn" => self.start(ctx, input, true),
            // onHeader(context, n, (key, value)...)
            "onHeader" => {
                let mut dec = Decoder::new(input);
                let _context = dec.bytes()?;
                let n = dec.u64()?;
                if n == 0 {
                    return Ok(Vec::new()); // header not fed yet
                }
                let key = dec.bytes()?.to_vec();
                let value = dec.bytes()?.to_vec();
                let Some(height) = parse_block_key(&key) else {
                    return Ok(Vec::new());
                };
                let Some(header) = BlockHeader::from_bytes(&value) else {
                    return Err(VmError::Revert("malformed header in feed".into()));
                };
                // Walk every pending request; completed ones are removed
                // from the id list.
                let ids = ctx.sload(b"pending-ids")?.unwrap_or_default();
                let mut keep = Vec::new();
                for chunk in ids.chunks(32) {
                    let mut txid = [0u8; 32];
                    txid.copy_from_slice(chunk);
                    let txid = Hash32::new(txid);
                    let done = self.advance(ctx, txid, height, &header)?;
                    if !done && ctx.sload(&Self::pending_slot(&txid))?.is_some() {
                        keep.extend_from_slice(txid.as_bytes());
                    }
                }
                ctx.sstore(b"pending-ids", &keep)?;
                Ok(Vec::new())
            }
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

/// Encodes a `mint`/`burn` input.
pub fn encode_mint(
    account: Address,
    amount: u64,
    height: u64,
    txid: &Hash32,
    proof: &SpvProof,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.address(&account).u64(amount).u64(height).hash(txid);
    encode_spv(&mut enc, proof);
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitcoin::BitcoinSim;
    use crate::erc20::Erc20;
    use grub_chain::{Blockchain, Transaction};
    use grub_core::contract::{encode_update, OnChainTrace, StorageManager};
    use grub_gas::Layer;
    use grub_merkle::{record_value_hash, MerkleKv, ProofKey, ReplState};
    use std::rc::Rc;

    struct Fx {
        chain: Blockchain,
        btc: BitcoinSim,
        relay: Address,
        token: Address,
        user: Address,
    }

    /// Boots the stack and feeds `blocks` Bitcoin headers, replicated so the
    /// confirmation walk runs synchronously.
    fn setup(blocks: usize) -> Fx {
        let mut chain = Blockchain::new();
        let do_addr = Address::derive("DO");
        let mgr = Address::derive("mgr");
        let relay = Address::derive("pegged");
        let token = Address::derive("wbtc");
        chain.deploy(
            mgr,
            Rc::new(StorageManager::new(do_addr, OnChainTrace::None)),
            Layer::Feed,
        );
        chain.deploy(
            relay,
            Rc::new(PeggedToken::new(mgr, token)),
            Layer::Application,
        );
        chain.deploy(token, Rc::new(Erc20::new(relay)), Layer::Application);
        let mut btc = BitcoinSim::new(42);
        let mut tree = MerkleKv::new();
        let mut to_r = Vec::new();
        for h in 0..blocks {
            btc.mine_block(3);
            let bytes = btc.header(h).unwrap().to_bytes().to_vec();
            tree.insert(
                ProofKey::new(ReplState::Replicated, block_key(h as u64)),
                record_value_hash(&bytes),
            );
            to_r.push((block_key(h as u64), bytes));
        }
        let input = encode_update(&tree.root(), &[], &to_r, &[]);
        chain.submit(Transaction::new(do_addr, mgr, "update", input, Layer::Feed));
        assert!(chain.produce_block().receipts[0].success);
        Fx {
            chain,
            btc,
            relay,
            token,
            user: Address::derive("user"),
        }
    }

    fn balance(fx: &Fx, addr: Address) -> u64 {
        let mut enc = Encoder::new();
        enc.address(&addr);
        let out = fx
            .chain
            .static_call(addr, fx.token, "balanceOf", &enc.finish())
            .unwrap();
        Decoder::new(&out).u64().unwrap()
    }

    #[test]
    fn deposit_with_six_confirmations_mints() {
        let mut fx = setup(10);
        let (txid, proof) = fx.btc.spv_proof(2, 1).unwrap();
        let user = fx.user;
        fx.chain.submit(Transaction::new(
            user,
            fx.relay,
            "mint",
            encode_mint(user, 500, 2, &txid, &proof),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        assert_eq!(balance(&fx, user), 500, "walk completes synchronously");
    }

    #[test]
    fn bad_spv_proof_rejects_mint() {
        let mut fx = setup(10);
        let (_, proof) = fx.btc.spv_proof(2, 1).unwrap();
        let forged_txid = grub_crypto::sha256(b"not a real deposit");
        let user = fx.user;
        fx.chain.submit(Transaction::new(
            user,
            fx.relay,
            "mint",
            encode_mint(user, 500, 2, &forged_txid, &proof),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(!block.receipts[0].success);
        assert_eq!(balance(&fx, user), 0);
    }

    #[test]
    fn insufficient_confirmations_stay_pending() {
        // Only 4 blocks exist after the deposit block: the walk stalls at
        // the missing header and no tokens are minted.
        let mut fx = setup(5);
        let (txid, proof) = fx.btc.spv_proof(0, 0).unwrap();
        let user = fx.user;
        fx.chain.submit(Transaction::new(
            user,
            fx.relay,
            "mint",
            encode_mint(user, 100, 0, &txid, &proof),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        assert_eq!(balance(&fx, user), 0, "needs 6 confirmations, has 5");
        // A Request event for the missing header was emitted.
        let mgr = Address::derive("mgr");
        assert!(!fx.chain.events_since(0, mgr, "Request").is_empty());
    }

    #[test]
    fn burn_destroys_previously_minted_tokens() {
        let mut fx = setup(12);
        let user = fx.user;
        let (txid, proof) = fx.btc.spv_proof(1, 0).unwrap();
        fx.chain.submit(Transaction::new(
            user,
            fx.relay,
            "mint",
            encode_mint(user, 300, 1, &txid, &proof),
            Layer::User,
        ));
        fx.chain.produce_block();
        assert_eq!(balance(&fx, user), 300);
        // Redeem proven by a different Bitcoin transaction.
        let (redeem_txid, redeem_proof) = fx.btc.spv_proof(3, 2).unwrap();
        fx.chain.submit(Transaction::new(
            user,
            fx.relay,
            "burn",
            encode_mint(user, 300, 3, &redeem_txid, &redeem_proof),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        assert_eq!(balance(&fx, user), 0);
    }

    #[test]
    fn block_key_round_trip() {
        assert_eq!(parse_block_key(&block_key(1234)), Some(1234));
        assert_eq!(parse_block_key(b"nope"), None);
    }
}
