//! SCoin: a minimalist MakerDAO-style stablecoin on a GRuB price feed
//! (paper §4.1).
//!
//! `SCoinIssuer` controls the supply of an [`crate::erc20::Erc20`] token so
//! that each SCoin is pegged to one USD worth of Ether:
//!
//! * `issue(buyer, eth_milli)` — the buyer locks Ether (modelled as an
//!   amount argument; the simulator has no native value transfers) and
//!   receives `eth · price` SCoins;
//! * `redeem(seller, scoins)` — burns SCoins and releases the equivalent
//!   Ether at the current price;
//! * both operations need the **current** Ether price, which the issuer
//!   reads from the GRuB feed with `gGet(ETH-USD, onPrice)`. On a replica
//!   hit the callback runs synchronously; on a miss it runs when the SP's
//!   `deliver` lands — so pending operations are queued in contract storage,
//!   exactly the kind of application state the paper's Table 3 accounts to
//!   the application layer.
//!
//! Over-collateralization: issuance locks 150% of the nominal Ether value,
//! following the MakerDAO-style working example the paper cites \[37\].

use grub_chain::codec::{Decoder, Encoder};
use grub_chain::{Address, CallContext, Contract, VmError};

use crate::erc20;

/// Collateral ratio in percent (150% as in the paper's working example).
pub const COLLATERAL_PCT: u64 = 150;

/// The feed key carrying the Ether price.
pub const ETH_PRICE_KEY: &[u8] = b"ETH-USD";

/// The SCoin issuer contract.
#[derive(Debug)]
pub struct SCoinIssuer {
    manager: Address,
    token: Address,
}

impl SCoinIssuer {
    /// Binds the issuer to a storage manager (the feed) and a token.
    pub fn new(manager: Address, token: Address) -> Self {
        SCoinIssuer { manager, token }
    }

    fn queue_push(
        ctx: &mut CallContext<'_>,
        kind: u8,
        account: Address,
        amount: u64,
    ) -> Result<(), VmError> {
        let tail = ctx.sload_u64(b"q:tail")?.unwrap_or(0);
        let mut enc = Encoder::new();
        enc.boolean(kind == 1).address(&account).u64(amount);
        ctx.sstore(&slot(b"q:", tail), &enc.finish())?;
        ctx.sstore_u64(b"q:tail", tail + 1)
    }

    fn request_price(ctx: &mut CallContext<'_>, manager: Address) -> Result<(), VmError> {
        let payload = grub_core::contract::encode_gget(ETH_PRICE_KEY, ctx.this, "onPrice");
        ctx.call(manager, "gGet", &payload)?;
        Ok(())
    }

    /// Parses the price (milli-USD per ETH) from the feed record: the first
    /// eight bytes, little-endian, clamped to at least 1.
    pub fn parse_price(record: &[u8]) -> u64 {
        let mut bytes = [0u8; 8];
        let n = record.len().min(8);
        bytes[..n].copy_from_slice(&record[..n]);
        (u64::from_le_bytes(bytes) % 1_000_000).max(1)
    }
}

fn slot(prefix: &[u8], index: u64) -> Vec<u8> {
    let mut out = prefix.to_vec();
    out.extend_from_slice(&index.to_le_bytes());
    out
}

impl Contract for SCoinIssuer {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        let mut dec = Decoder::new(input);
        match func {
            // issue(buyer, eth_milli): queue and ask the feed for the price.
            "issue" => {
                let buyer = dec.address()?;
                let eth_milli = dec.u64()?;
                if eth_milli == 0 {
                    return Err(VmError::Revert("zero issuance".into()));
                }
                Self::queue_push(ctx, 0, buyer, eth_milli)?;
                Self::request_price(ctx, self.manager)?;
                Ok(Vec::new())
            }
            // redeem(seller, scoins): queue and ask the feed for the price.
            "redeem" => {
                let seller = dec.address()?;
                let scoins = dec.u64()?;
                if scoins == 0 {
                    return Err(VmError::Revert("zero redemption".into()));
                }
                Self::queue_push(ctx, 1, seller, scoins)?;
                Self::request_price(ctx, self.manager)?;
                Ok(Vec::new())
            }
            // onPrice(context, n, (key, value)...): the gGet/deliver callback.
            "onPrice" => {
                let _context = dec.bytes()?;
                let n = dec.u64()?;
                if n == 0 {
                    // Price missing: leave the queue pending for the next
                    // delivery.
                    return Ok(Vec::new());
                }
                let _key = dec.bytes()?;
                let value = dec.bytes()?;
                let price_milli = Self::parse_price(value);
                // Drain the pending queue at this price.
                let head = ctx.sload_u64(b"q:head")?.unwrap_or(0);
                let tail = ctx.sload_u64(b"q:tail")?.unwrap_or(0);
                for i in head..tail {
                    let entry = ctx
                        .sload(&slot(b"q:", i))?
                        .ok_or_else(|| VmError::Revert("queue hole".into()))?;
                    let mut edec = Decoder::new(&entry);
                    let is_redeem = edec.boolean()?;
                    let account = edec.address()?;
                    let amount = edec.u64()?;
                    if is_redeem {
                        // Burn SCoins, release Ether: eth = scoins / price.
                        // A redemption exceeding the seller's balance is
                        // dropped rather than reverting the whole delivery —
                        // a revert would poison every other queued operation.
                        let mut q = Encoder::new();
                        q.address(&account);
                        let out = ctx.call(self.token, "balanceOf", &q.finish())?;
                        if Decoder::new(&out).u64()? < amount {
                            continue;
                        }
                        let eth_milli = amount * 1_000 / price_milli;
                        ctx.call(
                            self.token,
                            "burn",
                            &erc20::encode_addr_amount(account, amount),
                        )?;
                        let locked = ctx.sload_u64(b"locked")?.unwrap_or(0);
                        ctx.sstore_u64(b"locked", locked.saturating_sub(eth_milli))?;
                    } else {
                        // Mint: scoins = eth · price, with 150% of the
                        // nominal value locked as collateral.
                        let scoins = amount * price_milli / 1_000 * 100 / COLLATERAL_PCT;
                        if scoins == 0 {
                            continue;
                        }
                        ctx.call(
                            self.token,
                            "mint",
                            &erc20::encode_addr_amount(account, scoins),
                        )?;
                        let locked = ctx.sload_u64(b"locked")?.unwrap_or(0);
                        ctx.sstore_u64(b"locked", locked + amount)?;
                    }
                }
                ctx.sstore_u64(b"q:head", tail)?;
                Ok(Vec::new())
            }
            "lockedEth" => {
                let locked = ctx.sload_u64(b"locked")?.unwrap_or(0);
                let mut enc = Encoder::new();
                enc.u64(locked);
                Ok(enc.finish())
            }
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

/// Encodes the `issue`/`redeem` input.
pub fn encode_issue(account: Address, amount: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.address(&account).u64(amount);
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erc20::Erc20;
    use grub_chain::{Blockchain, Transaction};
    use grub_core::contract::{encode_update, OnChainTrace, StorageManager};
    use grub_gas::Layer;
    use grub_merkle::{record_value_hash, MerkleKv, ProofKey, ReplState};
    use std::rc::Rc;

    struct Fx {
        chain: Blockchain,
        issuer: Address,
        token: Address,
        do_addr: Address,
        buyer: Address,
    }

    /// Deploys the full stack with a replicated ETH price so `gGet` hits
    /// synchronously.
    fn setup(price_milli: u64) -> Fx {
        let mut chain = Blockchain::new();
        let do_addr = Address::derive("DO");
        let mgr = Address::derive("mgr");
        let issuer = Address::derive("issuer");
        let token = Address::derive("scoin");
        chain.deploy(
            mgr,
            Rc::new(StorageManager::new(do_addr, OnChainTrace::None)),
            Layer::Feed,
        );
        chain.deploy(
            issuer,
            Rc::new(SCoinIssuer::new(mgr, token)),
            Layer::Application,
        );
        chain.deploy(token, Rc::new(Erc20::new(issuer)), Layer::Application);
        // Feed the price, replicated.
        let mut tree = MerkleKv::new();
        let mut value = vec![0u8; 32];
        value[..8].copy_from_slice(&price_milli.to_le_bytes());
        tree.insert(
            ProofKey::new(ReplState::Replicated, ETH_PRICE_KEY.to_vec()),
            record_value_hash(&value),
        );
        let input = encode_update(&tree.root(), &[], &[(ETH_PRICE_KEY.to_vec(), value)], &[]);
        chain.submit(Transaction::new(do_addr, mgr, "update", input, Layer::Feed));
        assert!(chain.produce_block().receipts[0].success);
        Fx {
            chain,
            issuer,
            token,
            do_addr,
            buyer: Address::derive("buyer"),
        }
    }

    fn token_balance(fx: &Fx, addr: Address) -> u64 {
        let mut enc = Encoder::new();
        enc.address(&addr);
        let out = fx
            .chain
            .static_call(addr, fx.token, "balanceOf", &enc.finish())
            .unwrap();
        Decoder::new(&out).u64().unwrap()
    }

    #[test]
    fn issue_mints_at_the_fed_price() {
        // Price: 150 USD = 150_000 milli.
        let mut fx = setup(150_000);
        let buyer = fx.buyer;
        // Lock 2 ETH (2000 milli-ETH).
        fx.chain.submit(Transaction::new(
            buyer,
            fx.issuer,
            "issue",
            encode_issue(buyer, 2_000),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        // 2 ETH × $150 = $300 → at 150% collateral: 200 SCoin, i.e.
        // 200_000 milli-SCoin (all amounts are in milli units).
        assert_eq!(token_balance(&fx, buyer), 200_000);
    }

    #[test]
    fn redeem_burns_and_releases_collateral() {
        let mut fx = setup(150_000);
        let buyer = fx.buyer;
        fx.chain.submit(Transaction::new(
            buyer,
            fx.issuer,
            "issue",
            encode_issue(buyer, 3_000),
            Layer::User,
        ));
        fx.chain.produce_block();
        let minted = token_balance(&fx, buyer);
        assert!(minted > 0);
        fx.chain.submit(Transaction::new(
            buyer,
            fx.issuer,
            "redeem",
            encode_issue(buyer, minted),
            Layer::User,
        ));
        let block = fx.chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        assert_eq!(token_balance(&fx, buyer), 0);
    }

    #[test]
    fn zero_issue_reverts() {
        let mut fx = setup(150_000);
        let buyer = fx.buyer;
        fx.chain.submit(Transaction::new(
            buyer,
            fx.issuer,
            "issue",
            encode_issue(buyer, 0),
            Layer::User,
        ));
        assert!(!fx.chain.produce_block().receipts[0].success);
    }

    #[test]
    fn price_update_changes_mint_ratio() {
        let mut fx = setup(150_000);
        let buyer = fx.buyer;
        // DO halves the price.
        let mut tree = MerkleKv::new();
        let mut value = vec![0u8; 32];
        value[..8].copy_from_slice(&75_000u64.to_le_bytes());
        tree.insert(
            ProofKey::new(ReplState::Replicated, ETH_PRICE_KEY.to_vec()),
            record_value_hash(&value),
        );
        // Rebuild matching tree state: the original record updated in place.
        let input = encode_update(&tree.root(), &[(ETH_PRICE_KEY.to_vec(), value)], &[], &[]);
        fx.chain.submit(Transaction::new(
            fx.do_addr,
            Address::derive("mgr"),
            "update",
            input,
            Layer::Feed,
        ));
        assert!(fx.chain.produce_block().receipts[0].success);
        fx.chain.submit(Transaction::new(
            buyer,
            fx.issuer,
            "issue",
            encode_issue(buyer, 2_000),
            Layer::User,
        ));
        fx.chain.produce_block();
        // 2 ETH × $75 = $150 → at 150%: 100 SCoin = 100_000 milli-SCoin.
        assert_eq!(token_balance(&fx, buyer), 100_000);
    }

    #[test]
    fn parse_price_is_total() {
        assert_eq!(SCoinIssuer::parse_price(&[]), 1);
        assert!(SCoinIssuer::parse_price(&[0xFF; 32]) >= 1);
        let mut v = vec![0u8; 32];
        v[..8].copy_from_slice(&42u64.to_le_bytes());
        assert_eq!(SCoinIssuer::parse_price(&v), 42);
    }
}
