//! Correctness net for the multi-tenant feed engine (`grub-engine`).
//!
//! The engine's headline invariants, checked end to end:
//!
//! 1. **Unbatched equivalence** — an N-feed engine run with batching off
//!    submits exactly the transactions N standalone single-feed
//!    [`GrubSystem`] runs would, so every tenant's feed-layer Gas equals
//!    its standalone run and the aggregate equals the sum of singles.
//! 2. **Batching saves** — with batching on, same-block updates of a
//!    shard's feeds share one transaction envelope, so total feed-layer Gas
//!    is *strictly* lower than the unbatched sum-of-singles baseline while
//!    every read, replica, and digest stays byte-identical.
//! 3. **Read batching saves more** — coalescing a shard's SP deliveries
//!    into one `batchDeliver` transaction strictly undercuts write-only
//!    batching whenever any round delivers for ≥ 2 feeds of a shard.
//! 4. **Determinism** — two engine runs with the same specs render
//!    byte-identical reports, quota deferral included; a quota-parked
//!    feed's epochs produce identical results once they finally run.
//! 5. **Malformed batches rejected** — truncated or forged `batchDeliver`
//!    payloads revert with a typed decode error; nothing panics.

use std::rc::Rc;

use grub::chain::codec::encode_sections;
use grub::chain::{Address, Blockchain, Transaction};
use grub::core::policy::PolicyKind;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
use grub::engine::{EngineConfig, FeedEngine, FeedSpec, QuotaTier, ShardRouter, TenantBudget};
use grub::gas::Layer;
use grub::workload::ratio::RatioWorkload;
use grub::workload::ycsb;

/// Three deliberately different feeds: write-heavy adaptive, read-heavy
/// static-replicated with a preload, and a mixed memorizing feed.
fn mixed_specs() -> Vec<FeedSpec> {
    let preload: Vec<(String, Vec<u8>)> = ycsb::preload(16, 32, 5)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    vec![
        FeedSpec::new(
            "writer",
            SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
            RatioWorkload::new("sensor", 0.125).generate(8),
        ),
        FeedSpec::new(
            "reader",
            SystemConfig::new(PolicyKind::Bl2).preload(preload),
            RatioWorkload::new(ycsb::ycsb_key(3), 16.0).generate(4),
        ),
        FeedSpec::new(
            "mixed",
            SystemConfig::new(PolicyKind::Memorizing {
                k_prime: 2.3,
                d: 2.0,
            }),
            RatioWorkload::new("price", 2.0).generate(16),
        ),
    ]
}

/// Invariant 1: with batching disabled, each tenant's feed-layer Gas is
/// exactly its standalone single-feed run, and the engine total is the sum.
#[test]
fn unbatched_engine_equals_sum_of_singles() {
    let specs = mixed_specs();
    let singles: Vec<u64> = specs
        .iter()
        .map(|s| {
            GrubSystem::run_trace(&s.materialized(), &s.config)
                .expect("single-feed run")
                .feed_gas_total()
        })
        .collect();
    let report = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), specs).expect("engine");
    assert_eq!(report.tenants.len(), singles.len());
    for (tenant, single) in report.tenants.iter().zip(&singles) {
        assert_eq!(
            tenant.feed_gas_total(),
            *single,
            "{}: engine feed gas must equal the standalone run",
            tenant.tenant
        );
        assert_eq!(tenant.batched_update_gas, 0);
    }
    assert_eq!(report.feed_gas_total(), singles.iter().sum::<u64>());
    assert_eq!(report.failed_delivers(), 0);
}

/// Invariant 2 on the same specs: batching strictly undercuts the
/// sum-of-singles baseline, without changing what was served.
#[test]
fn batched_engine_strictly_undercuts_sum_of_singles() {
    let specs = mixed_specs();
    // One shard forces all three feeds' same-round updates into one batch.
    let unbatched =
        FeedEngine::run_specs(&EngineConfig::new(1).unbatched(), specs.clone()).expect("baseline");
    let batched = FeedEngine::run_specs(&EngineConfig::new(1), specs).expect("batched");
    assert!(
        batched.feed_gas_total() < unbatched.feed_gas_total(),
        "batched {} must be strictly below unbatched {}",
        batched.feed_gas_total(),
        unbatched.feed_gas_total()
    );
    // Same work was done: identical op counts, no rejected deliveries, and
    // the shard batches are fully accounted to tenants.
    assert_eq!(batched.total_ops(), unbatched.total_ops());
    assert_eq!(batched.failed_delivers(), 0);
    assert_eq!(
        batched
            .tenants
            .iter()
            .map(|t| t.batched_update_gas)
            .sum::<u64>(),
        batched.shard_update_gas.iter().sum::<u64>()
    );
    assert!(batched.shard_update_txs.iter().sum::<usize>() > 0);
}

/// Invariant 3: coalescing the shard's deliver transactions saves envelope
/// Gas on top of write-only batching, without changing what was served.
/// BL1 feeds never replicate, so every epoch's reads are answered by
/// proof-carrying delivers — the per-feed transactions read batching
/// exists to amortize.
#[test]
fn batched_reads_strictly_undercut_write_only_batching() {
    let build_specs = || -> Vec<FeedSpec> {
        (0..4)
            .map(|i| {
                FeedSpec::new(
                    format!("reader-{i}"),
                    SystemConfig::new(PolicyKind::Bl1),
                    RatioWorkload::new(format!("reader-{i}-key"), 8.0).generate(6),
                )
            })
            .collect()
    };
    let write_only =
        FeedEngine::run_specs(&EngineConfig::new(1).without_read_batching(), build_specs())
            .expect("write-only batching run");
    let full = FeedEngine::run_specs(&EngineConfig::new(1), build_specs()).expect("full run");
    assert!(
        full.feed_gas_total() < write_only.feed_gas_total(),
        "read batching {} must be strictly below write-only batching {}",
        full.feed_gas_total(),
        write_only.feed_gas_total()
    );
    // Same work was served: identical ops, nothing rejected, and the
    // deliver batches are fully accounted to tenants.
    assert_eq!(full.total_ops(), write_only.total_ops());
    assert_eq!(full.failed_delivers(), 0);
    assert!(full.shard_deliver_txs.iter().sum::<usize>() > 0);
    assert_eq!(
        full.tenants
            .iter()
            .map(|t| t.batched_deliver_gas)
            .sum::<u64>(),
        full.shard_deliver_gas.iter().sum::<u64>()
    );
    // Write-only batching sends no deliver batches at all.
    assert_eq!(write_only.shard_deliver_txs.iter().sum::<usize>(), 0);
    assert!(write_only
        .tenants
        .iter()
        .all(|t| t.batched_deliver_gas == 0));
}

/// Sparse rounds must not pay for batching they can't use: with a single
/// feed, every round's "batch" would hold one section, and a one-section
/// batch costs the section framing and router forwarding *on top of* the
/// same envelope. The engine falls back to the feed's own direct
/// transactions, so all three modes meter identical gas.
#[test]
fn lone_section_rounds_cost_no_more_than_unbatched() {
    let build_specs = || -> Vec<FeedSpec> {
        vec![FeedSpec::new(
            "solo",
            SystemConfig::new(PolicyKind::Bl1),
            RatioWorkload::new("solo-key", 8.0).generate(6),
        )]
    };
    let unbatched = FeedEngine::run_specs(&EngineConfig::new(1).unbatched(), build_specs())
        .expect("unbatched run");
    let write_only =
        FeedEngine::run_specs(&EngineConfig::new(1).without_read_batching(), build_specs())
            .expect("write-only run");
    let full = FeedEngine::run_specs(&EngineConfig::new(1), build_specs()).expect("full run");
    assert_eq!(
        full.feed_gas_total(),
        write_only.feed_gas_total(),
        "a lone deliver must ride a direct transaction, not a one-section batch"
    );
    assert_eq!(
        full.feed_gas_total(),
        unbatched.feed_gas_total(),
        "with nothing to coalesce, batching modes must meter identical gas"
    );
    assert_eq!(full.failed_delivers(), 0);
}

/// Invariant 4, quota half: deferral changes *when* epochs run, never what
/// they compute. With batching off, a quota-parked tenant's feed-layer Gas
/// still equals its standalone single-feed run exactly; with batching on,
/// reruns stay byte-identical.
#[test]
fn quota_deferral_is_deterministic_and_preserves_results() {
    let budget = TenantBudget::per_round(30_000);
    let build_specs = || -> Vec<FeedSpec> {
        let mut specs = mixed_specs();
        // The mixed feed spans several epochs, so a tight quota has
        // something to defer.
        specs[2] = specs[2].clone().with_budget(budget);
        specs
    };

    // Deterministic: byte-identical rendered reports across reruns.
    let a = FeedEngine::run_specs(&EngineConfig::new(2), build_specs()).expect("run a");
    let b = FeedEngine::run_specs(&EngineConfig::new(2), build_specs()).expect("run b");
    assert_eq!(
        a.render_table(),
        b.render_table(),
        "quota-deferred runs must render byte-identical reports"
    );
    assert!(
        a.tenants[2].parked_rounds > 0,
        "the quota must actually park the mixed feed"
    );

    // Parked epochs produce identical results when they finally run: the
    // unbatched engine with the quota still matches the standalone runs
    // exactly, tenant by tenant.
    let singles: Vec<u64> = build_specs()
        .iter()
        .map(|s| {
            GrubSystem::run_trace(&s.materialized(), &s.config)
                .expect("single-feed run")
                .feed_gas_total()
        })
        .collect();
    let unbatched = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), build_specs())
        .expect("unbatched quota run");
    assert!(unbatched.tenants[2].parked_rounds > 0);
    for (tenant, single) in unbatched.tenants.iter().zip(&singles) {
        assert_eq!(
            tenant.feed_gas_total(),
            *single,
            "{}: deferral must not change the tenant's gas",
            tenant.tenant
        );
    }
    assert_eq!(unbatched.failed_delivers(), 0);
}

/// Invariant 5: malformed `batchDeliver` payloads — truncated framing,
/// forged section counts — revert with a typed decode error instead of
/// panicking the chain.
#[test]
fn malformed_batch_deliver_payloads_rejected_without_panic() {
    let mut chain = Blockchain::new();
    let operator = Address::derive("shard-op");
    let router = Address::derive("shard-router");
    chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
    let honest = encode_sections(&[(Address::derive("mgr"), vec![7u8; 40])]);
    let truncated = honest[..honest.len() / 2].to_vec();
    let forged_count = {
        let mut enc = grub::chain::codec::Encoder::new();
        enc.u64(u64::MAX);
        enc.finish()
    };
    for payload in [truncated, forged_count, b"garbage".to_vec()] {
        chain.submit(Transaction::new(
            operator,
            router,
            "batchDeliver",
            payload,
            Layer::Feed,
        ));
        let block = chain.produce_block();
        assert!(!block.receipts[0].success, "malformed batch must revert");
        let err = block.receipts[0].error.as_deref().unwrap_or_default();
        assert!(
            err.contains("decode"),
            "rejection must be a typed decode error, got: {err}"
        );
    }
}

/// The parallel executor's determinism contract on the 8-feed mixed-skew
/// acceptance trace: staging shards on worker threads and merging in
/// canonical shard order must produce a chain — every block, receipt,
/// event, call record, and Gas total — *byte-for-byte identical* to the
/// sequential pipeline's, in every batching mode.
#[test]
fn parallel_staging_chain_is_byte_identical_to_sequential() {
    let build_specs = || zipfian_ratio_specs(8, 640, DEMO_RATIOS, &demo_policies());
    let run = |config: &EngineConfig| {
        FeedEngine::new(config, build_specs())
            .expect("engine builds")
            .run_with_chain()
            .expect("engine runs")
    };
    for (label, seq_cfg, par_cfg) in [
        (
            "full batching",
            EngineConfig::new(2),
            EngineConfig::new(2).parallel(),
        ),
        (
            "write-only batching",
            EngineConfig::new(2).without_read_batching(),
            EngineConfig::new(2).without_read_batching().parallel(),
        ),
        (
            "unbatched",
            EngineConfig::new(2).unbatched(),
            EngineConfig::new(2).unbatched().parallel(),
        ),
    ] {
        let (seq_report, seq_chain) = run(&seq_cfg);
        let (par_report, par_chain) = run(&par_cfg);
        assert_eq!(
            seq_chain.chain_digest(),
            par_chain.chain_digest(),
            "{label}: parallel merge must reproduce the sequential chain exactly"
        );
        assert_eq!(
            seq_report.render_table(),
            par_report.render_table(),
            "{label}: per-tenant accounting must match byte for byte"
        );
        assert_eq!(seq_chain.height(), par_chain.height());
    }
}

/// Determinism under spill pressure: BL2 feeds with 8 KiB values overflow
/// the shard batch payload bound every round, so each shard's write block
/// carries multiple transactions. The parallel merge must reproduce the
/// spill layout — transaction order, receipt pairing, byte-proportional
/// attribution — exactly.
#[test]
fn parallel_merge_reproduces_spill_rounds_byte_identically() {
    let build_specs = || -> Vec<FeedSpec> {
        (0..8)
            .map(|i| {
                FeedSpec::new(
                    format!("bulk-{i:02}"),
                    SystemConfig::new(PolicyKind::Bl2).epoch_ops(4),
                    RatioWorkload::new(format!("bulk-{i:02}-key"), 0.0)
                        .value_len(8192)
                        .generate(6),
                )
            })
            .collect()
    };
    let run = |config: &EngineConfig| {
        FeedEngine::new(config, build_specs())
            .expect("engine builds")
            .run_with_chain()
            .expect("engine runs")
    };
    let (seq_report, seq_chain) = run(&EngineConfig::new(2));
    let (par_report, par_chain) = run(&EngineConfig::new(2).parallel());
    // The workload actually spills: some shard sent more write transactions
    // than it had rounds to send them in.
    assert!(
        seq_report
            .shard_update_txs
            .iter()
            .any(|&txs| txs > seq_report.rounds),
        "8 KiB BL2 sections must overflow the batch payload bound \
         (update txs {:?} over {} rounds)",
        seq_report.shard_update_txs,
        seq_report.rounds
    );
    assert_eq!(
        seq_chain.chain_digest(),
        par_chain.chain_digest(),
        "spilled multi-tx rounds must merge byte-identically"
    );
    assert_eq!(seq_report.render_table(), par_report.render_table());
    // Attribution still sums exactly after the parallel merge.
    let attributed: u64 = par_report
        .tenants
        .iter()
        .map(|t| t.batched_update_gas)
        .sum();
    assert_eq!(attributed, par_report.shard_update_gas.iter().sum::<u64>());
}

/// The starvation bound under adversarial high-tier pressure: three
/// high-tier feeds refill 4× per round and drain first, while one low-tier
/// feed's bucket (1 Gas on even rounds, bottomless burst so a full bucket
/// never rescues it) can never afford an epoch. Only the tier's K-round
/// bound makes it run — and it must, every ≤ K rounds, to completion.
#[test]
fn high_tier_pressure_cannot_starve_low_tier() {
    let build_specs = || -> Vec<FeedSpec> {
        let mut specs: Vec<FeedSpec> = (0..3)
            .map(|i| {
                FeedSpec::new(
                    format!("vip-{i}"),
                    SystemConfig::new(PolicyKind::Memoryless { k: 2 }).epoch_ops(4),
                    RatioWorkload::new(format!("vip-{i}-key"), 1.0).generate(24),
                )
                .with_budget(TenantBudget::per_round(1_000_000).tier(QuotaTier::High))
            })
            .collect();
        specs.push(
            FeedSpec::new(
                "steerage",
                SystemConfig::new(PolicyKind::Memoryless { k: 2 }).epoch_ops(4),
                RatioWorkload::new("steerage-key", 1.0).generate(24),
            )
            .with_budget(
                TenantBudget::per_round(1)
                    .burst(u64::MAX / 4)
                    .tier(QuotaTier::Low),
            ),
        );
        specs
    };
    let total_ops: usize = build_specs()
        .iter()
        .map(|s| s.materialized().ops.len())
        .sum();
    let report = FeedEngine::run_specs(&EngineConfig::new(1), build_specs()).expect("tiered run");
    assert_eq!(
        report.total_ops(),
        total_ops,
        "the low-tier feed must complete its trace"
    );
    let low = report
        .tenants
        .iter()
        .find(|t| t.tenant == "steerage")
        .expect("low-tier tenant");
    assert!(
        low.parked_rounds > 0,
        "the pressure must actually park the low-tier feed"
    );
    assert!(
        low.max_parked_streak < QuotaTier::Low.starvation_bound(),
        "park streak {} must stay below the starvation bound {}",
        low.max_parked_streak,
        QuotaTier::Low.starvation_bound()
    );
    // The high tiers were never throttled that hard.
    for t in report.tenants.iter().filter(|t| t.tenant != "steerage") {
        assert!(
            t.max_parked_streak < QuotaTier::High.starvation_bound(),
            "{}: high tier streak {} exceeds its bound",
            t.tenant,
            t.max_parked_streak
        );
    }
    // Determinism survives tiers: a rerun renders byte-identically.
    let again = FeedEngine::run_specs(&EngineConfig::new(1), build_specs()).expect("tiered rerun");
    assert_eq!(report.render_table(), again.render_table());
}

/// Tiers change *when* epochs run, never what they compute: an unbatched
/// engine whose tenants carry mixed-tier quotas still meters exactly the
/// sum of N standalone single-feed runs, tenant by tenant.
#[test]
fn tiered_unbatched_run_still_equals_sum_of_singles() {
    let build_specs = || -> Vec<FeedSpec> {
        let mut specs = mixed_specs();
        specs[0] = specs[0]
            .clone()
            .with_budget(TenantBudget::per_round(40_000).tier(QuotaTier::High));
        specs[1] = specs[1]
            .clone()
            .with_budget(TenantBudget::per_round(60_000).tier(QuotaTier::Standard));
        specs[2] = specs[2]
            .clone()
            .with_budget(TenantBudget::per_round(25_000).tier(QuotaTier::Low));
        specs
    };
    let singles: Vec<u64> = build_specs()
        .iter()
        .map(|s| {
            GrubSystem::run_trace(&s.materialized(), &s.config)
                .expect("single-feed run")
                .feed_gas_total()
        })
        .collect();
    for config in [
        EngineConfig::new(2).unbatched(),
        EngineConfig::new(2).unbatched().parallel(),
    ] {
        let report = FeedEngine::run_specs(&config, build_specs()).expect("tiered unbatched run");
        for (tenant, single) in report.tenants.iter().zip(&singles) {
            assert_eq!(
                tenant.feed_gas_total(),
                *single,
                "{}: tiered deferral must not change the tenant's gas",
                tenant.tenant
            );
        }
        assert_eq!(report.feed_gas_total(), singles.iter().sum::<u64>());
        assert_eq!(report.failed_delivers(), 0);
    }
}

/// The ingestion-layer acceptance contract: an engine run whose feeds pull
/// from lazy generator sources mines the byte-identical chain
/// (`chain_digest`) of a run whose feeds replay pre-materialized traces of
/// the same generators — in the sequential pipeline AND under the parallel
/// executor, in every batching mode.
#[test]
fn source_driven_engine_runs_match_trace_driven_byte_for_byte() {
    use grub::workload::ratio::MultiKeyRatio;
    use grub::workload::source::OpSource;

    let generators = || -> Vec<(String, grub::core::system::SystemConfig, Box<dyn OpSource>)> {
        vec![
            (
                "streamer".into(),
                SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
                Box::new(
                    MultiKeyRatio::new(vec![("s-hot".into(), 8.0), ("s-cold".into(), 0.25)])
                        .seed(3)
                        .source(10),
                ),
            ),
            (
                "relay".into(),
                SystemConfig::new(PolicyKind::SelfTuning { window: 16 }),
                Box::new(
                    grub::workload::btcrelay::BtcRelayTrace::new()
                        .blocks(48)
                        .seed(5)
                        .source(),
                ),
            ),
            (
                "ticker".into(),
                SystemConfig::new(PolicyKind::Bl1),
                Box::new(RatioWorkload::new("tick", 4.0).seed(7).source(12)),
            ),
        ]
    };
    let source_specs = || -> Vec<FeedSpec> {
        generators()
            .into_iter()
            .map(|(tenant, config, source)| FeedSpec::from_source(tenant, config, source))
            .collect()
    };
    let trace_specs = || -> Vec<FeedSpec> {
        generators()
            .into_iter()
            .map(|(tenant, config, mut source)| {
                FeedSpec::new(
                    tenant,
                    config,
                    grub::workload::Trace::from_source(&mut source),
                )
            })
            .collect()
    };
    for (label, config) in [
        ("sequential full batching", EngineConfig::new(2)),
        ("parallel full batching", EngineConfig::new(2).parallel()),
        ("sequential unbatched", EngineConfig::new(2).unbatched()),
        (
            "parallel unbatched",
            EngineConfig::new(2).unbatched().parallel(),
        ),
    ] {
        let (trace_report, trace_chain) = FeedEngine::new(&config, trace_specs())
            .expect("trace engine builds")
            .run_with_chain()
            .expect("trace engine runs");
        let (source_report, source_chain) = FeedEngine::new(&config, source_specs())
            .expect("source engine builds")
            .run_with_chain()
            .expect("source engine runs");
        assert_eq!(
            trace_chain.chain_digest(),
            source_chain.chain_digest(),
            "{label}: source-driven chain diverged from trace-driven"
        );
        assert_eq!(
            trace_report.render_table(),
            source_report.render_table(),
            "{label}: accounting diverged"
        );
    }
}

/// The ISSUE acceptance run: ≥ 8 feeds with mixed Zipfian/uniform tenant
/// skew and mixed policies complete deterministically, and batching
/// demonstrably reduces total feed-layer Gas versus the unbatched
/// sum-of-singles baseline.
#[test]
fn eight_feed_mixed_skew_run_is_deterministic_and_batching_saves() {
    // Zipfian activity skew over 8 tenants: tenant-00 is the hot feed, the
    // tail idles — the cross-subsidization regime. Shared builder so test,
    // example, and bench measure the same workload shape.
    let build_specs = || zipfian_ratio_specs(8, 640, DEMO_RATIOS, &demo_policies());

    let unbatched = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), build_specs())
        .expect("unbatched run");
    let batched = FeedEngine::run_specs(&EngineConfig::new(2), build_specs()).expect("batched run");
    let batched_again =
        FeedEngine::run_specs(&EngineConfig::new(2), build_specs()).expect("batched rerun");

    // Deterministic: byte-identical rendered reports across reruns.
    assert_eq!(
        batched.render_table(),
        batched_again.render_table(),
        "same specs must render byte-identical reports"
    );

    // All 8 tenants completed their full traces, honestly.
    assert_eq!(batched.tenants.len(), 8);
    assert_eq!(batched.failed_delivers(), 0);
    assert_eq!(batched.total_ops(), unbatched.total_ops());
    // The zipfian skew is visible in the per-tenant accounting.
    assert!(
        batched.tenants[0].total_ops() > batched.tenants[7].total_ops(),
        "hot tenant must carry more traffic than the tail"
    );

    // And the headline: batching reduces total feed-layer gas.
    assert!(
        batched.feed_gas_total() < unbatched.feed_gas_total(),
        "batched {} must undercut unbatched {}",
        batched.feed_gas_total(),
        unbatched.feed_gas_total()
    );
}
