//! Correctness net for the multi-tenant feed engine (`grub-engine`).
//!
//! The engine's headline invariants, checked end to end:
//!
//! 1. **Unbatched equivalence** — an N-feed engine run with batching off
//!    submits exactly the transactions N standalone single-feed
//!    [`GrubSystem`] runs would, so every tenant's feed-layer Gas equals
//!    its standalone run and the aggregate equals the sum of singles.
//! 2. **Batching saves** — with batching on, same-block updates of a
//!    shard's feeds share one transaction envelope, so total feed-layer Gas
//!    is *strictly* lower than the unbatched sum-of-singles baseline while
//!    every read, replica, and digest stays byte-identical.
//! 3. **Determinism** — two engine runs with the same specs render
//!    byte-identical reports.

use grub::core::policy::PolicyKind;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
use grub::engine::{EngineConfig, FeedEngine, FeedSpec};
use grub::workload::ratio::RatioWorkload;
use grub::workload::ycsb;

/// Three deliberately different feeds: write-heavy adaptive, read-heavy
/// static-replicated with a preload, and a mixed memorizing feed.
fn mixed_specs() -> Vec<FeedSpec> {
    let preload: Vec<(String, Vec<u8>)> = ycsb::preload(16, 32, 5)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    vec![
        FeedSpec::new(
            "writer",
            SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
            RatioWorkload::new("sensor", 0.125).generate(8),
        ),
        FeedSpec::new(
            "reader",
            SystemConfig::new(PolicyKind::Bl2).preload(preload),
            RatioWorkload::new(ycsb::ycsb_key(3), 16.0).generate(4),
        ),
        FeedSpec::new(
            "mixed",
            SystemConfig::new(PolicyKind::Memorizing {
                k_prime: 2.3,
                d: 2.0,
            }),
            RatioWorkload::new("price", 2.0).generate(16),
        ),
    ]
}

/// Invariant 1: with batching disabled, each tenant's feed-layer Gas is
/// exactly its standalone single-feed run, and the engine total is the sum.
#[test]
fn unbatched_engine_equals_sum_of_singles() {
    let specs = mixed_specs();
    let singles: Vec<u64> = specs
        .iter()
        .map(|s| {
            GrubSystem::run_trace(&s.trace, &s.config)
                .expect("single-feed run")
                .feed_gas_total()
        })
        .collect();
    let report = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), specs).expect("engine");
    assert_eq!(report.tenants.len(), singles.len());
    for (tenant, single) in report.tenants.iter().zip(&singles) {
        assert_eq!(
            tenant.feed_gas_total(),
            *single,
            "{}: engine feed gas must equal the standalone run",
            tenant.tenant
        );
        assert_eq!(tenant.batched_update_gas, 0);
    }
    assert_eq!(report.feed_gas_total(), singles.iter().sum::<u64>());
    assert_eq!(report.failed_delivers(), 0);
}

/// Invariant 2 on the same specs: batching strictly undercuts the
/// sum-of-singles baseline, without changing what was served.
#[test]
fn batched_engine_strictly_undercuts_sum_of_singles() {
    let specs = mixed_specs();
    // One shard forces all three feeds' same-round updates into one batch.
    let unbatched =
        FeedEngine::run_specs(&EngineConfig::new(1).unbatched(), specs.clone()).expect("baseline");
    let batched = FeedEngine::run_specs(&EngineConfig::new(1), specs).expect("batched");
    assert!(
        batched.feed_gas_total() < unbatched.feed_gas_total(),
        "batched {} must be strictly below unbatched {}",
        batched.feed_gas_total(),
        unbatched.feed_gas_total()
    );
    // Same work was done: identical op counts, no rejected deliveries, and
    // the shard batches are fully accounted to tenants.
    assert_eq!(batched.total_ops(), unbatched.total_ops());
    assert_eq!(batched.failed_delivers(), 0);
    assert_eq!(
        batched
            .tenants
            .iter()
            .map(|t| t.batched_update_gas)
            .sum::<u64>(),
        batched.shard_update_gas.iter().sum::<u64>()
    );
    assert!(batched.shard_update_txs.iter().sum::<usize>() > 0);
}

/// The ISSUE acceptance run: ≥ 8 feeds with mixed Zipfian/uniform tenant
/// skew and mixed policies complete deterministically, and batching
/// demonstrably reduces total feed-layer Gas versus the unbatched
/// sum-of-singles baseline.
#[test]
fn eight_feed_mixed_skew_run_is_deterministic_and_batching_saves() {
    // Zipfian activity skew over 8 tenants: tenant-00 is the hot feed, the
    // tail idles — the cross-subsidization regime. Shared builder so test,
    // example, and bench measure the same workload shape.
    let build_specs = || zipfian_ratio_specs(8, 640, DEMO_RATIOS, &demo_policies());

    let unbatched = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), build_specs())
        .expect("unbatched run");
    let batched = FeedEngine::run_specs(&EngineConfig::new(2), build_specs()).expect("batched run");
    let batched_again =
        FeedEngine::run_specs(&EngineConfig::new(2), build_specs()).expect("batched rerun");

    // Deterministic: byte-identical rendered reports across reruns.
    assert_eq!(
        batched.render_table(),
        batched_again.render_table(),
        "same specs must render byte-identical reports"
    );

    // All 8 tenants completed their full traces, honestly.
    assert_eq!(batched.tenants.len(), 8);
    assert_eq!(batched.failed_delivers(), 0);
    assert_eq!(batched.total_ops(), unbatched.total_ops());
    // The zipfian skew is visible in the per-tenant accounting.
    assert!(
        batched.tenants[0].total_ops() > batched.tenants[7].total_ops(),
        "hot tenant must carry more traffic than the tail"
    );

    // And the headline: batching reduces total feed-layer gas.
    assert!(
        batched.feed_gas_total() < unbatched.feed_gas_total(),
        "batched {} must undercut unbatched {}",
        batched.feed_gas_total(),
        unbatched.feed_gas_total()
    );
}
