//! Property-based tests over the core data structures and protocol
//! invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use grub::crypto::sha256;
use grub::merkle::{record_value_hash, MerkleKv, ProofKey, ReplState, TreeOp as MerkleTreeOp};
use grub::store::{Db, Options};
use grub::workload::stats;
use grub::workload::{Op, Trace, ValueSpec};

fn pkey(state: bool, key: &str) -> ProofKey {
    ProofKey::new(
        if state {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        },
        key.as_bytes().to_vec(),
    )
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(bool, String, u64),
    Invalidate(bool, String),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    let key = prop::sample::select((0..24u8).map(|i| format!("key{i:02}")).collect::<Vec<_>>());
    prop_oneof![
        (any::<bool>(), key.clone(), any::<u64>()).prop_map(|(s, k, v)| TreeOp::Insert(s, k, v)),
        (any::<bool>(), key).prop_map(|(s, k)| TreeOp::Invalidate(s, k)),
    ]
}

/// Like [`tree_op`], but biased 2:1 toward invalidations (the invalidate
/// arm is listed twice; the union samples arms uniformly) so batches hit
/// tombstone-heavy rounds often.
fn tree_op_tombstone_heavy() -> impl Strategy<Value = TreeOp> {
    let key = prop::sample::select((0..24u8).map(|i| format!("key{i:02}")).collect::<Vec<_>>());
    prop_oneof![
        (any::<bool>(), key.clone(), any::<u64>()).prop_map(|(s, k, v)| TreeOp::Insert(s, k, v)),
        (any::<bool>(), key.clone()).prop_map(|(s, k)| TreeOp::Invalidate(s, k)),
        (any::<bool>(), key).prop_map(|(s, k)| TreeOp::Invalidate(s, k)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Merkle tree agrees with a plain ordered-map model under random
    /// insert/update/invalidate sequences, and two replicas applying the
    /// same sequence always share a root (the SP/DO lock-step invariant).
    #[test]
    fn merkle_tree_matches_model(ops in prop::collection::vec(tree_op(), 1..120)) {
        let mut tree = MerkleKv::new();
        let mut twin = MerkleKv::new();
        let mut model: BTreeMap<ProofKey, grub::crypto::Hash32> = BTreeMap::new();
        for op in &ops {
            match op {
                TreeOp::Insert(state, key, v) => {
                    let pk = pkey(*state, key);
                    let vh = record_value_hash(&v.to_le_bytes());
                    tree.insert(pk.clone(), vh);
                    twin.insert(pk.clone(), vh);
                    model.insert(pk, vh);
                }
                TreeOp::Invalidate(state, key) => {
                    let pk = pkey(*state, key);
                    tree.invalidate(&pk);
                    twin.invalidate(&pk);
                    model.remove(&pk);
                }
            }
        }
        prop_assert_eq!(tree.root(), twin.root(), "replicas diverged");
        prop_assert_eq!(tree.len(), model.len());
        for (pk, vh) in &model {
            prop_assert_eq!(tree.get(pk), Some(*vh));
        }
        // Live iteration matches the model's order exactly.
        let live = tree.iter_live();
        let expect: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(live, expect);
    }

    /// Batched tree updates are root-equivalent to the sequential path at
    /// every chunk boundary, for arbitrary chunkings of random
    /// write/delete/relocate mixes — including tombstone-heavy rounds — and
    /// canonical rebuilds of both trees agree too.
    #[test]
    fn apply_batch_equals_sequential(
        ops in prop::collection::vec(tree_op_tombstone_heavy(), 1..160),
        chunk in 1usize..32,
    ) {
        let mut seq = MerkleKv::new();
        let mut batched = MerkleKv::new();
        for chunk_ops in ops.chunks(chunk) {
            let mut batch: Vec<MerkleTreeOp> = Vec::with_capacity(chunk_ops.len());
            for op in chunk_ops {
                match op {
                    TreeOp::Insert(state, key, v) => {
                        let pk = pkey(*state, key);
                        let vh = record_value_hash(&v.to_le_bytes());
                        seq.insert(pk.clone(), vh);
                        batch.push(MerkleTreeOp::Insert(pk, vh));
                    }
                    TreeOp::Invalidate(state, key) => {
                        let pk = pkey(*state, key);
                        seq.invalidate(&pk);
                        batch.push(MerkleTreeOp::Invalidate(pk));
                    }
                }
            }
            batched.apply_batch(batch);
            prop_assert_eq!(seq.root(), batched.root(), "chunk boundary roots diverged");
        }
        prop_assert_eq!(seq.len(), batched.len());
        // Rebuilding canonicalizes shape identically given identical
        // content, so the rebuilt roots must agree as well.
        seq.rebuild();
        batched.rebuild();
        prop_assert_eq!(seq.root(), batched.root(), "rebuilt roots diverged");
    }

    /// Building a tree with one `insert_batch` call equals one-by-one
    /// inserts (duplicate keys included: last write wins in both paths).
    #[test]
    fn insert_batch_equals_sequential_build(
        records in prop::collection::vec((any::<bool>(), 0u8..24, any::<u64>()), 1..120),
    ) {
        let mut seq = MerkleKv::new();
        let mut batched = MerkleKv::new();
        let recs: Vec<_> = records
            .iter()
            .map(|(s, k, v)| {
                (
                    pkey(*s, &format!("key{k:02}")),
                    record_value_hash(&v.to_le_bytes()),
                )
            })
            .collect();
        for (pk, vh) in &recs {
            seq.insert(pk.clone(), *vh);
        }
        batched.insert_batch(recs);
        prop_assert_eq!(seq.root(), batched.root(), "batch build diverged");
        prop_assert_eq!(seq.len(), batched.len());
    }

    /// Membership proofs verify for every live record and never verify
    /// against a mutated root.
    #[test]
    fn membership_proofs_sound_and_complete(ops in prop::collection::vec(tree_op(), 1..80)) {
        let mut tree = MerkleKv::new();
        for op in &ops {
            match op {
                TreeOp::Insert(state, key, v) => {
                    tree.insert(pkey(*state, key), record_value_hash(&v.to_le_bytes()));
                }
                TreeOp::Invalidate(state, key) => {
                    tree.invalidate(&pkey(*state, key));
                }
            }
        }
        let root = tree.root();
        for (pk, vh) in tree.iter_live() {
            let proof = tree.prove(&pk).expect("live key has a proof");
            prop_assert!(proof.verify(&root, &pk, &vh));
            let wrong_root = sha256(root.as_bytes());
            prop_assert!(!proof.verify(&wrong_root, &pk, &vh));
        }
    }

    /// Range proofs return exactly the model's records for arbitrary query
    /// ranges (completeness + soundness of the pruned-tree construction).
    #[test]
    fn range_proofs_match_model(
        ops in prop::collection::vec(tree_op(), 1..100),
        lo in 0u8..24,
        width in 0u8..24,
    ) {
        let mut tree = MerkleKv::new();
        let mut model: BTreeMap<ProofKey, grub::crypto::Hash32> = BTreeMap::new();
        for op in &ops {
            match op {
                TreeOp::Insert(state, key, v) => {
                    let pk = pkey(*state, key);
                    let vh = record_value_hash(&v.to_le_bytes());
                    tree.insert(pk.clone(), vh);
                    model.insert(pk, vh);
                }
                TreeOp::Invalidate(state, key) => {
                    let pk = pkey(*state, key);
                    tree.invalidate(&pk);
                    model.remove(&pk);
                }
            }
        }
        let lo_key = pkey(false, &format!("key{lo:02}"));
        let hi_key = pkey(false, &format!("key{:02}", lo.saturating_add(width)));
        let proof = tree.prove_range(&lo_key, &hi_key);
        let got = proof.verify(&tree.root(), &lo_key, &hi_key).expect("verifies");
        let expect: Vec<_> = model
            .range(lo_key..=hi_key)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// The LSM store agrees with an ordered-map model across puts, deletes,
    /// flushes, compactions and scans.
    #[test]
    fn store_matches_model(
        ops in prop::collection::vec(
            (0u8..3, 0u8..20, any::<u16>()),
            1..150
        )
    ) {
        let dir = std::env::temp_dir().join(format!(
            "grub-prop-{}-{}", std::process::id(),
            rand::random::<u64>()
        ));
        let mut db = Db::open(&dir, Options {
            memtable_bytes: 512,
            l0_compaction_trigger: 2,
            ..Options::default()
        }).expect("open");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (kind, key_id, v) in &ops {
            let key = format!("k{key_id:02}").into_bytes();
            match kind {
                0 => {
                    let value = v.to_le_bytes().to_vec();
                    db.put(key.clone(), value.clone()).expect("put");
                    model.insert(key, value);
                }
                1 => {
                    db.delete(&key).expect("delete");
                    model.remove(&key);
                }
                _ => {
                    db.flush().expect("flush");
                }
            }
        }
        for (key, value) in &model {
            prop_assert_eq!(db.get(key).expect("get"), Some(value.clone()));
        }
        let scanned = db.scan(None, None).expect("scan");
        let expect: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// reads-after-write statistics: the series sums to the trace's read
    /// count (minus leading reads) and has one entry per write.
    #[test]
    fn stats_series_invariants(flags in prop::collection::vec(any::<bool>(), 1..200)) {
        let trace: Trace = flags
            .iter()
            .map(|w| {
                if *w {
                    Op::Write { key: "k".into(), value: ValueSpec::new(8, 0) }
                } else {
                    Op::Read { key: "k".into() }
                }
            })
            .collect();
        let series = stats::reads_after_write_series(&trace);
        prop_assert_eq!(series.len(), trace.write_count());
        let leading_reads = trace.ops.iter().take_while(|o| !o.is_write()).count();
        prop_assert_eq!(
            series.iter().sum::<usize>(),
            trace.read_count() - leading_reads
        );
    }
}

/// The memoryless policy is 2-competitive in its decision count on the
/// worst-case sequence (Theorem A.1, decision-level check): over n cycles of
/// (write + K reads), it replicates exactly n times — each paid replication
/// wasted, bounding cost at (1 + K·Cread/Cupd)× optimal.
#[test]
fn memoryless_worst_case_replication_count() {
    use grub::core::policy::{Memoryless, ReplicationPolicy};
    let k = 3u64;
    let cycles = 50usize;
    let mut policy = Memoryless::new(k);
    let mut replications = 0;
    let mut last = ReplState::NotReplicated;
    for _ in 0..cycles {
        let s = policy.on_write("k");
        if s == ReplState::Replicated && last != ReplState::Replicated {
            replications += 1;
        }
        last = s;
        for _ in 0..k {
            let s = policy.on_read("k");
            if s == ReplState::Replicated && last != ReplState::Replicated {
                replications += 1;
            }
            last = s;
        }
    }
    assert_eq!(replications, cycles, "one wasted replication per cycle");
}
