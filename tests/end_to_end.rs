//! Cross-crate integration tests: the full GRuB stack driven by real
//! workloads, including the paper's headline behaviours.

use grub::core::policy::PolicyKind;
use grub::core::provider::AdversaryMode;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::merkle::ReplState;
use grub::workload::oracle::OracleTrace;
use grub::workload::ratio::RatioWorkload;
use grub::workload::ycsb::{self, YcsbKind};
use grub::workload::{Op, Trace, ValueSpec};

fn run(trace: &Trace, policy: PolicyKind) -> grub::core::metrics::RunReport {
    GrubSystem::run_trace(trace, &SystemConfig::new(policy)).expect("run")
}

fn run_live(trace: &Trace, policy: PolicyKind) -> grub::core::metrics::RunReport {
    GrubSystem::run_trace(trace, &SystemConfig::new(policy).live_reads()).expect("run")
}

/// The headline claim: on the oracle-style trace GRuB beats both static
/// baselines (paper Table 3 reports +64% for BL1 and +11% for BL2 over
/// GRuB).
#[test]
fn grub_beats_both_baselines_on_oracle_trace() {
    // §4.1 tempo: each peek() arrives in its own block (live replay).
    let trace = OracleTrace::new().writes(300).generate();
    let grub = run_live(&trace, PolicyKind::Memoryless { k: 1 });
    let bl1 = run_live(&trace, PolicyKind::Bl1);
    let bl2 = run_live(&trace, PolicyKind::Bl2);
    assert!(
        grub.feed_gas_total() < bl1.feed_gas_total(),
        "GRuB {} must beat BL1 {}",
        grub.feed_gas_total(),
        bl1.feed_gas_total()
    );
    assert!(
        grub.feed_gas_total() < bl2.feed_gas_total(),
        "GRuB {} must beat BL2 {}",
        grub.feed_gas_total(),
        bl2.feed_gas_total()
    );
}

/// Figure 7's crossover: BL1 wins write-heavy, BL2 wins read-heavy, and the
/// crossover ratio sits in the paper's low-single-digit region.
#[test]
fn baseline_crossover_is_low_single_digits() {
    let at = |ratio: f64| {
        let trace = RatioWorkload::new("k", ratio).generate(64);
        let bl1 = run(&trace, PolicyKind::Bl1).feed_gas_per_op();
        let bl2 = run(&trace, PolicyKind::Bl2).feed_gas_per_op();
        (bl1, bl2)
    };
    let (bl1_low, bl2_low) = at(0.5);
    assert!(bl1_low < bl2_low, "write-heavy: BL1 must win");
    let (bl1_high, bl2_high) = at(16.0);
    assert!(bl2_high < bl1_high, "read-heavy: BL2 must win");
}

/// GRuB's convergence (Figure 6 behaviour): when the workload flips from
/// write-heavy to read-heavy, the replica state follows.
#[test]
fn grub_adapts_to_phase_change() {
    let mut trace = RatioWorkload::new("k", 0.125).generate(32);
    trace.extend(RatioWorkload::new("k", 32.0).generate(16));
    let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
    let mut system = GrubSystem::new(&config).expect("system");
    system.drive(&trace).expect("drive");
    assert_eq!(
        system.owner().state_of("k"),
        ReplState::Replicated,
        "after the read-heavy phase the record must be replicated"
    );
    let report = system.into_report();
    // The last epochs (read-heavy, replicated) must be far cheaper per op
    // than the early read epochs that paid deliver costs.
    let series = report.feed_series();
    let early_reads = series[series.len() / 2];
    let late = *series.last().expect("non-empty");
    assert!(
        late < early_reads,
        "converged epochs ({late}) must be cheaper than transition epochs ({early_reads})"
    );
}

/// Every adversarial SP behaviour is rejected by on-chain verification and
/// the honest path stays clean.
#[test]
fn adversarial_sp_modes_are_all_rejected() {
    for mode in [
        AdversaryMode::ForgeValue,
        AdversaryMode::OmitRecord,
        AdversaryMode::HideLeaf,
        AdversaryMode::ReplayStale,
    ] {
        let config = SystemConfig::new(PolicyKind::Bl1);
        let mut system = GrubSystem::new(&config).expect("system");
        let mut warmup = Trace::new();
        warmup.ops.push(Op::Write {
            key: "k".into(),
            value: ValueSpec::new(64, 1),
        });
        for _ in 0..31 {
            warmup.ops.push(Op::Read { key: "k".into() });
        }
        system.drive(&warmup).expect("honest warmup");
        assert_eq!(
            system
                .reports()
                .iter()
                .map(|e| e.failed_delivers)
                .sum::<usize>(),
            0,
            "{mode:?}: honest phase must not fail"
        );
        system.set_adversary(mode);
        let mut attack = Trace::new();
        attack.ops.push(Op::Write {
            key: "k".into(),
            value: ValueSpec::new(64, 2),
        });
        for _ in 0..31 {
            attack.ops.push(Op::Read { key: "k".into() });
        }
        system.drive(&attack).expect("attack phase runs");
        let failed: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
        assert!(failed > 0, "{mode:?} must be rejected by the contract");
    }
}

/// The DO's monitor reconstructs exactly the reads the consumers issued
/// (trace federation, §3.2).
#[test]
fn monitor_federation_is_lossless() {
    let trace = OracleTrace::new().writes(50).generate();
    let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
    let mut system = GrubSystem::new(&config).expect("system");
    system.drive(&trace).expect("drive");
    let observed = system.federated_read_keys();
    assert_eq!(observed.len(), trace.read_count());
}

/// A YCSB A/B mix runs end to end with scans and inserts, and GRuB lands at
/// or below the worse baseline.
#[test]
fn ycsb_mix_with_scans_runs_clean() {
    let records = 1u64 << 8;
    let record_len = 64usize;
    let preload: Vec<(String, Vec<u8>)> = ycsb::preload(records, record_len, 3)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    let trace = ycsb::mixed_trace(
        records,
        record_len,
        3,
        &[(YcsbKind::A, 256), (YcsbKind::E, 128), (YcsbKind::B, 256)],
    );
    let mut worst = 0u64;
    let mut grub_total = u64::MAX;
    for policy in [
        PolicyKind::Bl1,
        PolicyKind::Bl2,
        PolicyKind::Memoryless { k: 2 },
    ] {
        let config = SystemConfig::new(policy.clone()).preload(preload.clone());
        let report = GrubSystem::run_trace(&trace, &config).expect("run");
        assert_eq!(report.failed_delivers(), 0, "{policy:?}");
        if matches!(policy, PolicyKind::Memoryless { .. }) {
            grub_total = report.feed_gas_total();
        } else {
            worst = worst.max(report.feed_gas_total());
        }
    }
    assert!(
        grub_total < worst,
        "GRuB ({grub_total}) must beat the worse static baseline ({worst})"
    );
}

/// SP and DO mirror trees stay root-synchronized across a churny run with
/// replications and evictions.
#[test]
fn sp_and_do_roots_stay_in_lockstep() {
    let mut trace = RatioWorkload::new("a", 8.0).generate(16);
    trace.extend(RatioWorkload::new("b", 0.25).generate(16));
    trace.extend(RatioWorkload::new("a", 0.0).generate(16));
    let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
    let mut system = GrubSystem::new(&config).expect("system");
    system.drive(&trace).expect("drive");
    assert_eq!(system.owner().root(), system.provider().root());
}

/// Reads of keys that were never written deliver verified absence instead
/// of wedging the pipeline.
#[test]
fn reading_absent_keys_is_safe() {
    let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
    let mut system = GrubSystem::new(&config).expect("system");
    let mut trace = Trace::new();
    trace.ops.push(Op::Write {
        key: "exists".into(),
        value: ValueSpec::new(32, 1),
    });
    for _ in 0..8 {
        trace.ops.push(Op::Read {
            key: "ghost".into(),
        });
    }
    system.drive(&trace).expect("drive");
    let report = system.into_report();
    assert_eq!(report.failed_delivers(), 0);
}

/// Large-record epochs split their update transactions instead of
/// violating the Ctx payload bound.
#[test]
fn oversized_epochs_chunk_update_transactions() {
    let trace = RatioWorkload::new("big", 0.0).value_len(4096).generate(64);
    let report = run(&trace, PolicyKind::Bl2);
    assert_eq!(report.total_ops(), 64);
    assert!(report.feed_gas_total() > 0);
}

/// The block cache is invisible to results: a cold run (capacity 0) and a
/// warm run (large capacity) of the same workload mine byte-identical
/// chains, and the warm run actually exercises the cache.
#[test]
fn cold_and_warm_block_cache_mine_identical_chains() {
    use grub::store::Options;
    use grub::workload::ratio::MultiKeyRatio;
    let mix = MultiKeyRatio::new(vec![
        ("hot".into(), 8.0),
        ("cold".into(), 0.125),
        ("warm".into(), 1.0),
    ])
    .seed(23);
    let trace = mix.generate(40);
    let run_with = |capacity: usize| {
        // Tiny memtable + eager compaction so SSTable block reads — the
        // paths the cache sits on — actually occur.
        let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 }).store_options(Options {
            memtable_bytes: 512,
            l0_compaction_trigger: 2,
            block_cache_capacity: capacity,
            ..Options::default()
        });
        let mut system = GrubSystem::new(&config).expect("system");
        system.drive(&trace).expect("drive");
        (
            system.chain().chain_digest(),
            system.provider().read_stats(),
        )
    };
    let (cold_digest, cold_stats) = run_with(0);
    let (warm_digest, warm_stats) = run_with(4096);
    assert_eq!(cold_digest, warm_digest, "cache capacity moved the chain");
    assert!(
        cold_stats.block_reads > 0,
        "workload must exercise the SSTable read path"
    );
    assert_eq!(cold_stats.cache_hits, 0, "capacity 0 must never hit");
    assert!(warm_stats.cache_hits > 0, "warm run must hit the cache");
    assert!(
        warm_stats.block_reads < cold_stats.block_reads,
        "warm run must read fewer blocks ({} vs {})",
        warm_stats.block_reads,
        cold_stats.block_reads
    );
}
