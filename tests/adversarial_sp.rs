//! Security tests: a hostile storage provider tries every attack class the
//! provider implements — forging values, omitting records naively, hiding a
//! leaf behind an opaque digest, and replaying a stale snapshot — and the
//! storage-manager contract's Merkle ADS verification must reject each one
//! (paper §3.3; promoted from `examples/adversarial_sp.rs` into assertions).

use grub::core::policy::PolicyKind;
use grub::core::provider::AdversaryMode;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::workload::{Op, Trace, ValueSpec};

/// One full-epoch trace: a fresh write of `key` followed by 31 reads.
fn epoch_trace(key: &str, value_seed: u64) -> Trace {
    let mut trace = Trace::new();
    trace.ops.push(Op::Write {
        key: key.into(),
        value: ValueSpec::new(32, value_seed),
    });
    trace
        .ops
        .extend(std::iter::repeat_n(Op::Read { key: key.into() }, 31));
    trace
}

/// Runs warm-up honestly, switches the SP to `mode`, replays an epoch of
/// traffic, and returns `(honest_rejections, attack_rejections)`.
fn run_attack(mode: AdversaryMode) -> (usize, usize) {
    // BL1 keeps the record off chain, so every read needs a delivery — the
    // maximal attack surface for a lying SP.
    let config = SystemConfig::new(PolicyKind::Bl1);
    let mut system = GrubSystem::new(&config).expect("system builds");
    system
        .drive(&epoch_trace("price", 7))
        .expect("honest warmup");
    let honest: usize = system.reports().iter().map(|e| e.failed_delivers).sum();

    // The fresh write gives ReplayStale a genuinely stale snapshot to serve.
    system.set_adversary(mode);
    system
        .drive(&epoch_trace("price", 8))
        .expect("attack epoch");
    let total: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
    (honest, total - honest)
}

#[test]
fn honest_sp_has_no_rejected_deliveries() {
    let (honest, attack) = run_attack(AdversaryMode::Honest);
    assert_eq!(honest, 0, "honest warm-up must verify cleanly");
    assert_eq!(attack, 0, "an honest SP is never rejected");
}

#[test]
fn forged_values_are_rejected() {
    let (honest, attack) = run_attack(AdversaryMode::ForgeValue);
    assert_eq!(honest, 0);
    assert!(attack > 0, "tampered record values must fail proof checks");
}

#[test]
fn omitted_records_are_rejected() {
    let (honest, attack) = run_attack(AdversaryMode::OmitRecord);
    assert_eq!(honest, 0);
    assert!(attack > 0, "dropping a requested record must be detected");
}

#[test]
fn hidden_leaves_are_rejected() {
    let (honest, attack) = run_attack(AdversaryMode::HideLeaf);
    assert_eq!(honest, 0);
    assert!(
        attack > 0,
        "collapsing an in-range leaf to an opaque digest must be detected"
    );
}

#[test]
fn stale_replays_are_rejected() {
    let (honest, attack) = run_attack(AdversaryMode::ReplayStale);
    assert_eq!(honest, 0);
    assert!(attack > 0, "proofs against a superseded root must fail");
}

/// After an attack is caught, an SP that returns to the protocol serves
/// verifiable deliveries again — rejection never wedges the feed.
#[test]
fn feed_recovers_once_the_sp_turns_honest_again() {
    let config = SystemConfig::new(PolicyKind::Bl1);
    let mut system = GrubSystem::new(&config).expect("system builds");
    system
        .drive(&epoch_trace("price", 7))
        .expect("honest warmup");

    system.set_adversary(AdversaryMode::ForgeValue);
    system
        .drive(&epoch_trace("price", 8))
        .expect("attack epoch");
    let after_attack: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
    assert!(after_attack > 0, "attack must be caught first");

    system.set_adversary(AdversaryMode::Honest);
    system
        .drive(&epoch_trace("price", 9))
        .expect("recovery epoch");
    let after_recovery: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
    assert_eq!(
        after_recovery, after_attack,
        "no further rejections once the SP follows the protocol again"
    );
}

/// The attacks must also fail against an adaptive policy mid-flight (the
/// record may be replicated or in transition — verification must hold in
/// every replication state).
#[test]
fn attacks_fail_under_an_adaptive_policy_too() {
    for mode in [
        AdversaryMode::ForgeValue,
        AdversaryMode::ReplayStale,
        AdversaryMode::OmitRecord,
    ] {
        let config = SystemConfig::new(PolicyKind::Memoryless { k: 64 });
        let mut system = GrubSystem::new(&config).expect("system builds");
        system
            .drive(&epoch_trace("price", 7))
            .expect("honest warmup");
        let honest: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
        assert_eq!(honest, 0, "{mode:?}: honest warm-up must verify");

        system.set_adversary(mode);
        // K=64 exceeds the reads per epoch, so the record stays
        // un-replicated and the epoch still exercises request/deliver
        // under an adaptive policy.
        system
            .drive(&epoch_trace("price", 8))
            .expect("attack epoch");
        let total: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
        assert!(
            total > 0,
            "{mode:?}: attack must be rejected mid-adaptation"
        );
    }
}
