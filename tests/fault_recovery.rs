//! Crash-point fault injection through the engine's stage → merge → commit
//! pipeline, with the full recovery contract:
//!
//! * every named [`FaultPoint`] kills the 8-feed mixed-skew fleet mid-run,
//!   in both scheduler modes;
//! * a fresh process re-executing from genesis — checkpointed against the
//!   surviving chain ([`FeedEngine::expect_digest_at`]) — converges to a
//!   chain digest and per-feed store state *byte-identical* to an
//!   uninterrupted run;
//! * the dying process's persistent SP stores reopen cleanly (WAL torn-tail
//!   and SSTable tmp-file hardening) and the Merkle scrubber repairs them
//!   to the clean run's exact state digest.

use std::path::{Path, PathBuf};

use grub::chain::ChainConfig;
use grub::core::provider::StorageProvider;
use grub::core::scrub::Scrubber;
use grub::crypto::Hash32;
use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
use grub::engine::{EngineConfig, ExecMode, FeedEngine, FeedSpec};
use grub::fault::{FaultPlan, FaultPoint};
use grub::store::Options;

/// Tiny memtable so SSTable flushes — and the mid-flush crash point —
/// actually occur on a 320-op fleet.
fn small_store() -> Options {
    Options {
        memtable_bytes: 512,
        l0_compaction_trigger: 2,
        ..Options::default()
    }
}

/// The 8-feed mixed-skew fleet of the multifeed example, scaled down and
/// pointed at persistent per-tenant store directories under `root`.
fn fleet(root: &Path) -> Vec<FeedSpec> {
    let mut specs = zipfian_ratio_specs(8, 320, DEMO_RATIOS, &demo_policies());
    for spec in &mut specs {
        spec.config = spec
            .config
            .clone()
            .store_at(root.join(&spec.tenant))
            .store_options(small_store());
    }
    specs
}

fn engine_config(mode: ExecMode) -> EngineConfig {
    let mut config = EngineConfig::new(2);
    config.exec = mode;
    // A reorg-capable chain (seeded forks every 5th block, depth ≤ 2) so
    // the mid-reorg-rollback and mid-resubmission crash points actually
    // trip, with depth-2 confirmation and inclusion latency layered on so
    // recovery is proven digest-identical through the full confirmation
    // stack, not just around it.
    config.chain = ChainConfig::default()
        .reorg(7, 5, 2)
        .confirm_depth(2)
        .latency(5, 1);
    config
}

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "grub-faultrec-{tag}-{}-{}",
        std::process::id(),
        rand::random::<u64>()
    ))
}

/// (tenant, store state digest) per feed of a finished engine.
fn store_digests(engine: &FeedEngine, tenants: &[String]) -> Vec<(String, Hash32)> {
    tenants
        .iter()
        .map(|tenant| {
            let driver = engine.driver(tenant).expect("tenant exists");
            (
                tenant.clone(),
                driver.provider().state_digest().expect("digest"),
            )
        })
        .collect()
}

#[test]
fn every_crash_point_recovers_to_byte_identical_state() {
    // Crash points are process-global; serialize against other fault tests.
    let _guard = grub::fault::injection_lock();
    let tenants: Vec<String> = fleet(&temp_root("probe"))
        .iter()
        .map(|s| s.tenant.clone())
        .collect();
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        // The uninterrupted reference run for this scheduler mode.
        let clean_root = temp_root("clean");
        let mut clean = FeedEngine::new(&engine_config(mode), fleet(&clean_root)).unwrap();
        clean.run_rounds().unwrap();
        let clean_digest = clean.chain().chain_digest();
        let clean_stores = store_digests(&clean, &tenants);

        for point in FaultPoint::ALL {
            let crash_root = temp_root("crash");
            let recover_root = temp_root("recover");

            // 1. The crash: arm the point after deployment (provisioning is
            //    not under test) and the run must die mid-pipeline.
            let mut crashed = FeedEngine::new(&engine_config(mode), fleet(&crash_root)).unwrap();
            grub::fault::arm(FaultPlan::at(point));
            let died = crashed.run_rounds();
            assert!(
                died.is_err(),
                "{mode:?}/{point:?}: armed crash point did not kill the run"
            );
            assert!(
                !grub::fault::is_armed(),
                "{mode:?}/{point:?}: run died but the point never tripped"
            );
            let surviving_height = crashed.chain().height();
            let surviving_digest = crashed.chain().chain_digest();
            drop(crashed); // process death — persistent stores stay on disk

            // 2. Recovery: a fresh process re-executes from genesis. The
            //    surviving chain is the oracle: when re-execution reaches its
            //    height the digests must agree (the checkpoint panics
            //    otherwise), and the completed run must be byte-identical to
            //    the uninterrupted one.
            let mut recovered =
                FeedEngine::new(&engine_config(mode), fleet(&recover_root)).unwrap();
            if surviving_height > recovered.chain().height() {
                recovered.expect_digest_at(surviving_height, surviving_digest);
            } else {
                // The crash predated the first post-deployment block; the
                // deployments themselves must already agree.
                assert_eq!(
                    recovered.chain().chain_digest(),
                    surviving_digest,
                    "{mode:?}/{point:?}: deployment diverged from the surviving chain"
                );
            }
            recovered.run_rounds().unwrap();
            assert_eq!(
                recovered.chain().chain_digest(),
                clean_digest,
                "{mode:?}/{point:?}: recovered chain is not byte-identical to the clean run"
            );
            let recovered_stores = store_digests(&recovered, &tenants);
            assert_eq!(
                recovered_stores, clean_stores,
                "{mode:?}/{point:?}: recovered SP stores diverge from the clean run"
            );

            // 3. The survivor stores: whatever the dying process left on
            //    disk must reopen (WAL torn-tail + SSTable tmp hardening),
            //    and one repairing scrub pass against the recovered DO
            //    brings each store to the clean run's exact content.
            for (tenant, clean_sd) in &clean_stores {
                let driver = recovered.driver(tenant).expect("tenant exists");
                let mut survivor = StorageProvider::open_at(
                    driver.provider().address(),
                    crash_root.join(tenant),
                    small_store(),
                )
                .unwrap_or_else(|e| {
                    panic!("{mode:?}/{point:?}/{tenant}: survivor store did not reopen: {e}")
                });
                Scrubber::repairing()
                    .scrub(
                        recovered.chain(),
                        driver.manager(),
                        driver.owner(),
                        &mut survivor,
                    )
                    .unwrap();
                assert_eq!(
                    survivor.state_digest().unwrap(),
                    *clean_sd,
                    "{mode:?}/{point:?}/{tenant}: scrub-repaired survivor diverges"
                );
            }
            std::fs::remove_dir_all(&crash_root).ok();
            std::fs::remove_dir_all(&recover_root).ok();
        }
        drop(clean);
        std::fs::remove_dir_all(&clean_root).ok();
    }
}
