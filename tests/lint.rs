//! The `grub-lint` fixture corpus and workspace self-check.
//!
//! Every rule gets at least one deliberately-bad fixture (must be flagged)
//! and one good fixture (must pass), so a rule that silently stops firing
//! — or starts over-firing — fails this suite. The final test lints the
//! workspace itself: the tree this test compiles from must be clean.

use std::fs;
use std::path::{Path, PathBuf};

use grub_lint::diag::Rule;
use grub_lint::{lint_source, lint_workspace};

fn fixture_dir(rule_dir: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(rule_dir)
}

/// Runs `rule` over every fixture in `tests/lint_fixtures/<rule_dir>/`,
/// positioned as non-test library code of `crate_name`. `bad_*` fixtures
/// must produce at least one diagnostic of `rule` (and nothing else);
/// `good_*` fixtures must produce none.
fn check_rule_fixtures(rule: Rule, rule_dir: &str, crate_name: &str) {
    let dir = fixture_dir(rule_dir);
    let mut saw_bad = false;
    let mut saw_good = false;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.ends_with(".rs") {
            continue;
        }
        let source = fs::read_to_string(&path).unwrap();
        let rel = format!("crates/{crate_name}/src/{name}");
        let diags = lint_source(rule, crate_name, &rel, &source);
        if name.starts_with("bad_") {
            saw_bad = true;
            assert!(
                !diags.is_empty(),
                "{name}: expected {rule} violations, got none"
            );
            for d in &diags {
                assert_eq!(d.rule, rule, "{name}: unexpected {} diagnostic", d.rule);
                assert!(d.line > 0, "{name}: diagnostic without a line");
            }
        } else {
            saw_good = true;
            assert!(
                diags.is_empty(),
                "{name}: expected clean, got: {}",
                diags
                    .iter()
                    .map(|d| d.render())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
    assert!(
        saw_bad && saw_good,
        "{rule_dir}: fixture corpus must hold bad and good cases"
    );
}

#[test]
fn determinism_fixtures() {
    check_rule_fixtures(Rule::Determinism, "determinism", "core");
}

#[test]
fn gas_safety_fixtures() {
    check_rule_fixtures(Rule::GasSafety, "gas_safety", "gas");
}

#[test]
fn panic_fixtures() {
    check_rule_fixtures(Rule::Panic, "panic", "store");
}

#[test]
fn unjustified_suppression_is_itself_a_violation() {
    let src = "// grub-lint: allow(panic)\npub fn f(x: Option<u64>) -> u64 { x.unwrap() }\n";
    let diags = lint_source(Rule::Panic, "core", "crates/core/src/x.rs", src);
    // The bare allow is inert (the unwrap still fires) and malformed (it
    // carries no justification), so both diagnostics surface.
    assert!(
        diags.iter().any(|d| d.rule == Rule::Panic),
        "unwrap must stay flagged"
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::Suppression),
        "bare allow must be flagged"
    );
}

#[test]
fn registry_bad_workspace_is_flagged_both_directions() {
    let report = lint_workspace(&fixture_dir("registry/bad_workspace")).unwrap();
    let msgs: Vec<String> = report.diags.iter().map(|d| d.render()).collect();
    for d in &report.diags {
        assert_eq!(
            d.rule,
            Rule::RegistrySync,
            "unexpected diagnostic: {}",
            d.render()
        );
    }
    let expect = [
        "`GRUB_ROGUE` is read here but has no row", // code → doc
        "documents `GRUB_GHOST` but nothing in the tree reads it", // doc → code
        "`FaultPoint::Orphan` has no live hook site", // variant → hook
        "crash point `orphan` (`FaultPoint::Orphan`) is not documented", // variant → doc
    ];
    for needle in expect {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "missing violation containing {needle:?}; got: {msgs:?}"
        );
    }
    assert_eq!(
        report.diags.len(),
        expect.len(),
        "exactly the seeded violations: {msgs:?}"
    );
}

#[test]
fn registry_good_workspace_is_clean() {
    let report = lint_workspace(&fixture_dir("registry/good_workspace")).unwrap();
    assert!(
        report.clean(),
        "good registry fixture must be clean, got: {}",
        report
            .diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn seeded_determinism_violation_is_rejected() {
    // The same seeded violation CI injects into grub-chain to prove the
    // gate bites: HashMap iteration feeding an aggregate.
    let seeded = "use std::collections::HashMap;\n\
                  pub fn grub_lint_seeded_violation(m: &HashMap<u64, u64>) -> u64 {\n\
                      m.iter().map(|(k, v)| k + v).sum()\n\
                  }\n";
    let diags = lint_source(
        Rule::Determinism,
        "chain",
        "crates/chain/src/chain.rs",
        seeded,
    );
    assert!(
        !diags.is_empty(),
        "seeded HashMap iteration must be flagged"
    );
}

#[test]
fn workspace_self_check_is_clean() {
    let report = lint_workspace(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    assert!(
        report.clean(),
        "the workspace must lint clean:\n{}",
        report
            .diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
}
