//! Validation of the paper's consistency theorems (§3.4, Appendix E)
//! against the multi-node network model — and, since confirmation
//! semantics became first-class chain axes, against the executable
//! engine/system stack itself:
//!
//! * **No lost, no duplicated writes** — a depth-confirmed, latency-enabled,
//!   reorged engine run converges to the canonical-branch digest with every
//!   reorg-abandoned transaction resubmitted exactly once, across
//!   Sequential/Parallel × all three batching modes.
//! * **Monotone confirmed height** — the confirmation frontier the engine
//!   reports per round never regresses, and the run ends fully confirmed.
//! * **Freshness** — a confirmed read never observes state older than the
//!   last depth-confirmed write: epoch boundaries await the frontier before
//!   the DO observes anything, so an honest SP's delivers are never
//!   rejected even under the full reorg + latency + congestion stack.

use grub::chain::network::NetworkSim;
use grub::chain::{ChainConfig, TxId};
use grub::core::consistency::FreshnessModel;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
use grub::engine::{EngineConfig, ExecMode, FeedEngine, FeedSpec};
use grub::workload::ratio::RatioWorkload;

fn config() -> ChainConfig {
    ChainConfig {
        block_period_ms: 1_000,
        finality_depth: 6,
        propagation_ms: 300,
        ..ChainConfig::default()
    }
}

/// Theorem 3.2 / E.2 — epoch-bounded freshness: a gPut submitted at `t` is
/// final on **every** node by `t + E + Pt + F·B`, where `E` accounts for the
/// DO's batching delay before the transaction even enters the network.
#[test]
fn gput_visible_everywhere_within_freshness_bound() {
    let epoch_ms = 2_000u64;
    let model = FreshnessModel::new(epoch_ms, config());
    for seed in 0..25 {
        let mut net = NetworkSim::new(6, config(), seed);
        let produced_at = 500u64; // the DO produced the update
        let submitted_at = produced_at + epoch_ms; // worst-case batching wait
        net.submit(0, submitted_at, "gPut");
        let bound = produced_at + model.freshness_bound_ms();
        net.run_until(bound + 60_000);
        for node in 0..6 {
            assert!(
                net.finalized_view(node, bound)
                    .contains(&"gPut".to_string()),
                "seed {seed}, node {node}: gPut not final at the freshness bound"
            );
        }
    }
}

/// Theorem 3.1 / E.1 — concurrent gPut/gGet order non-deterministically,
/// but identically across every node once final.
#[test]
fn concurrent_gput_gget_order_agrees_across_nodes() {
    let mut seen_orders = std::collections::HashSet::new();
    for seed in 0..40 {
        let mut net = NetworkSim::new(5, config(), seed);
        net.submit(1, 100, "gPut(k,v)");
        net.submit(3, 100, "deliver(k)"); // the gGet's async completion
        let horizon = net.finality_bound_ms(100) + 30_000;
        net.run_until(horizon);
        let reference = net.finalized_view(0, horizon);
        assert_eq!(reference.len(), 2, "seed {seed}: both txs must finalize");
        for node in 1..5 {
            assert_eq!(
                net.finalized_view(node, horizon),
                reference,
                "seed {seed}: node {node} saw a different final order"
            );
        }
        seen_orders.insert(reference);
    }
    assert_eq!(
        seen_orders.len(),
        2,
        "across seeds both serializations must occur (non-determinism)"
    );
}

/// Before finality, views may differ between nodes; after the bound they
/// cannot.
#[test]
fn prefinality_views_may_disagree_but_finalized_views_never_do() {
    let mut any_prefinal_disagreement = false;
    for seed in 0..30 {
        let mut net = NetworkSim::new(4, config(), seed);
        for i in 0..10 {
            net.submit(i % 4, 100 + i as u64 * 50, format!("tx{i}"));
        }
        net.run_until(120_000);
        // Probe inside the propagation window of block 1 (produced at
        // 1000 ms, reaching each node up to Pt = 300 ms later).
        let probe = 1_050;
        let views: Vec<_> = (0..4).map(|n| net.node_view(n, probe)).collect();
        if views.iter().any(|v| *v != views[0]) {
            any_prefinal_disagreement = true;
        }
        // Finalized views at a late time must be identical.
        let late = 110_000;
        let finals: Vec<_> = (0..4).map(|n| net.finalized_view(n, late)).collect();
        for f in &finals {
            assert_eq!(*f, finals[0], "seed {seed}: finalized views diverged");
        }
        assert_eq!(finals[0].len(), 10, "seed {seed}: all txs must finalize");
    }
    assert!(
        any_prefinal_disagreement,
        "propagation delays should produce at least one pre-final disagreement"
    );
}

// ---------------------------------------------------------------------------
// The executable consistency net: the §3.4/App. E guarantees asserted
// against the real engine/system stack under depth-N confirmation,
// seeded inclusion latency, and reorg-driven resubmission.
// ---------------------------------------------------------------------------

fn fleet() -> Vec<FeedSpec> {
    zipfian_ratio_specs(6, 240, DEMO_RATIOS, &demo_policies())
}

fn engine_config(mode: ExecMode, batching: bool, read_batching: bool) -> EngineConfig {
    let mut config = EngineConfig::new(2);
    config.exec = mode;
    config.batching = batching;
    config.read_batching = read_batching;
    config
}

/// The confirmation stack every engine-level net runs under: writes
/// acknowledged three blocks deep, inclusion gated by the seeded latency
/// process.
fn confirmed_chain() -> ChainConfig {
    ChainConfig::default().confirm_depth(3).latency(5, 1)
}

/// No lost writes, no duplicated writes (Theorem E.1's atomicity half):
/// a depth-confirmed, latency-enabled run that suffers seeded reorgs
/// converges to the straight-line digest with every abandoned transaction
/// resubmitted exactly once — in both scheduler modes and all three
/// batching modes.
#[test]
fn reorged_depth_confirmed_runs_lose_and_duplicate_no_writes() {
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        for (batching, read_batching) in [(false, false), (true, false), (true, true)] {
            let label = format!("{mode:?}/batching={batching}/read_batching={read_batching}");
            let plain = {
                let mut config = engine_config(mode, batching, read_batching);
                config.chain = confirmed_chain();
                config
            };
            let (plain_report, plain_chain) = FeedEngine::new(&plain, fleet())
                .unwrap()
                .run_with_chain()
                .unwrap_or_else(|e| panic!("{label}: straight-line run failed: {e}"));

            let forked = {
                let mut config = engine_config(mode, batching, read_batching);
                config.chain = confirmed_chain().reorg(7, 4, 2);
                config
            };
            let (forked_report, forked_chain) = FeedEngine::new(&forked, fleet())
                .unwrap()
                .run_with_chain()
                .unwrap_or_else(|e| panic!("{label}: reorg run failed: {e}"));

            let events = forked_chain.reorg_events();
            assert!(
                !events.is_empty(),
                "{label}: the reorg process never forked — the net tested nothing"
            );
            assert!(
                events.iter().any(|e| !e.abandoned.is_empty()),
                "{label}: no fork ever abandoned a transaction — the net tested nothing"
            );
            for (i, ev) in events.iter().enumerate() {
                assert_eq!(
                    ev.resubmitted, ev.abandoned,
                    "{label}: reorg {i} resubmitted a different set than it abandoned"
                );
            }

            // No duplicated writes: every transaction id appears in exactly
            // one canonical block's receipts.
            let mut receipt_ids: Vec<TxId> = forked_chain
                .blocks()
                .iter()
                .flat_map(|b| b.receipts.iter().map(|r| r.tx_id))
                .collect();
            let total = receipt_ids.len();
            receipt_ids.sort();
            receipt_ids.dedup();
            assert_eq!(
                receipt_ids.len(),
                total,
                "{label}: a resubmitted transaction executed twice on the canonical branch"
            );
            // No lost writes: every abandoned transaction landed canonically.
            for ev in events {
                for id in &ev.abandoned {
                    assert!(
                        receipt_ids.binary_search(id).is_ok(),
                        "{label}: abandoned {id:?} never re-executed on the canonical branch"
                    );
                }
            }

            assert_eq!(
                forked_chain.chain_digest(),
                plain_chain.chain_digest(),
                "{label}: reorg + resubmission must converge to the straight-line digest"
            );
            assert_eq!(
                forked_chain.height(),
                plain_chain.height(),
                "{label}: canonical height must match the straight-line run"
            );
            assert_eq!(
                forked_report.render_table(),
                plain_report.render_table(),
                "{label}: the Gas report must be untouched by reorgs under confirmation"
            );
            assert_eq!(
                forked_report.failed_delivers(),
                0,
                "{label}: an honest SP must never be rejected under the confirmation stack"
            );
        }
    }
}

/// The confirmation frontier the engine reports per round is monotone
/// non-decreasing — even across reorgs, whose rollback is clamped at the
/// frontier — and every run ends fully confirmed (zero lag), in both
/// scheduler modes and all three batching modes.
#[test]
fn confirmed_height_is_monotone_and_runs_end_fully_confirmed() {
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        for (batching, read_batching) in [(false, false), (true, false), (true, true)] {
            let label = format!("{mode:?}/batching={batching}/read_batching={read_batching}");
            let mut config = engine_config(mode, batching, read_batching);
            config.chain = confirmed_chain().reorg(7, 4, 2);
            let (report, chain) = FeedEngine::new(&config, fleet())
                .unwrap()
                .run_with_chain()
                .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));

            assert!(!report.metrics.is_empty(), "{label}: no rounds recorded");
            for pair in report.metrics.windows(2) {
                assert!(
                    pair[1].confirmed_height >= pair[0].confirmed_height,
                    "{label}: confirmed height regressed between rounds {} and {} \
                     ({} -> {})",
                    pair[0].round,
                    pair[1].round,
                    pair[0].confirmed_height,
                    pair[1].confirmed_height
                );
            }
            let last = report.metrics.last().unwrap();
            assert_eq!(
                last.confirmed_height,
                chain.confirmed_height(),
                "{label}: the final round's frontier must be the chain's frontier"
            );
            assert_eq!(
                chain.confirmed_height(),
                chain.height().saturating_sub(3),
                "{label}: the frontier must trail the tip by exactly confirm_depth"
            );
            assert_eq!(
                chain.confirmation_lag(),
                0,
                "{label}: every acknowledged write must be depth-confirmed at run end"
            );
        }
    }
}

/// Freshness under the full stack (Theorem 3.2 against the real pipeline):
/// with depth-3 confirmation, seeded inclusion latency, reorgs, and a
/// congested mempool all active, a confirmed read never observes state
/// older than the last depth-confirmed write — witnessed by the on-chain
/// deliver check, which rejects any SP delivery whose digest disagrees with
/// contract state. Zero rejections across every demo policy, in both the
/// coalesced and the live (one read per block) tempo.
#[test]
fn confirmed_reads_stay_fresh_under_the_full_stack() {
    let stack = ChainConfig::default()
        .confirm_depth(3)
        .latency(5, 2)
        .reorg(7, 3, 2)
        .mempool(2);
    let trace = RatioWorkload::new("feed", 1.0).generate(24);
    for policy in demo_policies() {
        for live in [false, true] {
            let label = format!("{policy:?}/live={live}");
            let mut config = SystemConfig::new(policy.clone());
            if live {
                config = config.live_reads();
            }
            config.chain = stack;
            let report = GrubSystem::run_trace(&trace, &config)
                .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
            assert_eq!(
                report.total_ops(),
                trace.ops.len(),
                "{label}: every trace operation must be accounted for"
            );
            assert_eq!(
                report.failed_delivers(),
                0,
                "{label}: a stale delivery would have been rejected on-chain"
            );

            // Digest transparency of the whole stack: the reorged run lands
            // on the straight-line chain, fully confirmed.
            let run = |chain: ChainConfig| {
                let mut config = SystemConfig::new(policy.clone());
                if live {
                    config = config.live_reads();
                }
                config.chain = chain;
                let mut system =
                    GrubSystem::new(&config).unwrap_or_else(|e| panic!("{label}: {e}"));
                system.drive(&trace).unwrap();
                system
            };
            let forked = run(stack);
            let straight = run({
                let mut plain = stack;
                plain.reorg = None;
                plain
            });
            assert_eq!(
                forked.chain().chain_digest(),
                straight.chain().chain_digest(),
                "{label}: the confirmation stack must stay digest-transparent"
            );
            assert_eq!(
                forked.chain().confirmation_lag(),
                0,
                "{label}: every acknowledged write must be depth-confirmed at run end"
            );
        }
    }
}

/// The freshness bound is monotone in each parameter, matching the formula
/// `E + Pt + F·B`.
#[test]
fn freshness_bound_monotonicity() {
    let base = FreshnessModel::new(1_000, config());
    let more_epoch = FreshnessModel::new(5_000, config());
    assert!(more_epoch.freshness_bound_ms() > base.freshness_bound_ms());
    let mut deeper = config();
    deeper.finality_depth += 1;
    assert!(FreshnessModel::new(1_000, deeper).freshness_bound_ms() > base.freshness_bound_ms());
    assert_eq!(
        base.freshness_bound_ms(),
        1_000 + 300 + 6 * 1_000,
        "formula check"
    );
}
