//! Validation of the paper's consistency theorems (§3.4, Appendix E)
//! against the multi-node network model.

use grub::chain::network::NetworkSim;
use grub::chain::ChainConfig;
use grub::core::consistency::FreshnessModel;

fn config() -> ChainConfig {
    ChainConfig {
        block_period_ms: 1_000,
        finality_depth: 6,
        propagation_ms: 300,
        ..ChainConfig::default()
    }
}

/// Theorem 3.2 / E.2 — epoch-bounded freshness: a gPut submitted at `t` is
/// final on **every** node by `t + E + Pt + F·B`, where `E` accounts for the
/// DO's batching delay before the transaction even enters the network.
#[test]
fn gput_visible_everywhere_within_freshness_bound() {
    let epoch_ms = 2_000u64;
    let model = FreshnessModel::new(epoch_ms, config());
    for seed in 0..25 {
        let mut net = NetworkSim::new(6, config(), seed);
        let produced_at = 500u64; // the DO produced the update
        let submitted_at = produced_at + epoch_ms; // worst-case batching wait
        net.submit(0, submitted_at, "gPut");
        let bound = produced_at + model.freshness_bound_ms();
        net.run_until(bound + 60_000);
        for node in 0..6 {
            assert!(
                net.finalized_view(node, bound)
                    .contains(&"gPut".to_string()),
                "seed {seed}, node {node}: gPut not final at the freshness bound"
            );
        }
    }
}

/// Theorem 3.1 / E.1 — concurrent gPut/gGet order non-deterministically,
/// but identically across every node once final.
#[test]
fn concurrent_gput_gget_order_agrees_across_nodes() {
    let mut seen_orders = std::collections::HashSet::new();
    for seed in 0..40 {
        let mut net = NetworkSim::new(5, config(), seed);
        net.submit(1, 100, "gPut(k,v)");
        net.submit(3, 100, "deliver(k)"); // the gGet's async completion
        let horizon = net.finality_bound_ms(100) + 30_000;
        net.run_until(horizon);
        let reference = net.finalized_view(0, horizon);
        assert_eq!(reference.len(), 2, "seed {seed}: both txs must finalize");
        for node in 1..5 {
            assert_eq!(
                net.finalized_view(node, horizon),
                reference,
                "seed {seed}: node {node} saw a different final order"
            );
        }
        seen_orders.insert(reference);
    }
    assert_eq!(
        seen_orders.len(),
        2,
        "across seeds both serializations must occur (non-determinism)"
    );
}

/// Before finality, views may differ between nodes; after the bound they
/// cannot.
#[test]
fn prefinality_views_may_disagree_but_finalized_views_never_do() {
    let mut any_prefinal_disagreement = false;
    for seed in 0..30 {
        let mut net = NetworkSim::new(4, config(), seed);
        for i in 0..10 {
            net.submit(i % 4, 100 + i as u64 * 50, format!("tx{i}"));
        }
        net.run_until(120_000);
        // Probe inside the propagation window of block 1 (produced at
        // 1000 ms, reaching each node up to Pt = 300 ms later).
        let probe = 1_050;
        let views: Vec<_> = (0..4).map(|n| net.node_view(n, probe)).collect();
        if views.iter().any(|v| *v != views[0]) {
            any_prefinal_disagreement = true;
        }
        // Finalized views at a late time must be identical.
        let late = 110_000;
        let finals: Vec<_> = (0..4).map(|n| net.finalized_view(n, late)).collect();
        for f in &finals {
            assert_eq!(*f, finals[0], "seed {seed}: finalized views diverged");
        }
        assert_eq!(finals[0].len(), 10, "seed {seed}: all txs must finalize");
    }
    assert!(
        any_prefinal_disagreement,
        "propagation delays should produce at least one pre-final disagreement"
    );
}

/// The freshness bound is monotone in each parameter, matching the formula
/// `E + Pt + F·B`.
#[test]
fn freshness_bound_monotonicity() {
    let base = FreshnessModel::new(1_000, config());
    let more_epoch = FreshnessModel::new(5_000, config());
    assert!(more_epoch.freshness_bound_ms() > base.freshness_bound_ms());
    let mut deeper = config();
    deeper.finality_depth += 1;
    assert!(FreshnessModel::new(1_000, deeper).freshness_bound_ms() > base.freshness_bound_ms());
    assert_eq!(
        base.freshness_bound_ms(),
        1_000 + 300 + 6 * 1_000,
        "formula check"
    );
}
