//! Property tests for the durability and authentication substrates:
//!
//! * `grub-merkle` — insert/update/prove/verify round-trips over arbitrary
//!   key-value sequences: every live record's membership proof verifies
//!   against the current root, updates change what the proof commits to,
//!   and proofs never verify against the wrong root, key, or value;
//! * `grub-store` — WAL/SSTable recovery: an arbitrary stream of puts,
//!   deletes, and flushes, cut off at an arbitrary point (some data only in
//!   the WAL, some in SSTables), must reappear intact when the database is
//!   reopened from disk.

use std::collections::BTreeMap;

use proptest::prelude::*;

use grub::crypto::sha256;
use grub::merkle::{record_value_hash, MerkleKv, ProofKey, ReplState};
use grub::store::{Db, Options};

fn pkey(replicated: bool, key: &str) -> ProofKey {
    ProofKey::new(
        if replicated {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        },
        key.as_bytes().to_vec(),
    )
}

/// (replicated-half, key-id, value-seed) — a compact op encoding that
/// revisits keys often, so sequences exercise update-in-place heavily.
fn kv_op() -> impl Strategy<Value = (bool, u8, u64)> {
    (any::<bool>(), 0u8..16, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insert/update/prove/verify round-trip: after an arbitrary sequence
    /// of inserts and updates, every key proves its *latest* value against
    /// the current root, and nothing else verifies.
    #[test]
    fn merkle_proof_round_trips(ops in prop::collection::vec(kv_op(), 1..80)) {
        let mut tree = MerkleKv::new();
        let mut model: BTreeMap<ProofKey, [u8; 8]> = BTreeMap::new();
        for (replicated, key_id, seed) in &ops {
            let pk = pkey(*replicated, &format!("key{key_id:02}"));
            let value = seed.to_le_bytes();
            tree.insert(pk.clone(), record_value_hash(&value));
            model.insert(pk, value);
        }
        let root = tree.root();
        for (pk, value) in &model {
            let vh = record_value_hash(value);
            let proof = tree.prove(pk).expect("live key has a proof");
            prop_assert!(
                proof.verify(&root, pk, &vh),
                "latest value must verify after updates"
            );
            // A superseded or forged value must not verify.
            let forged = record_value_hash(&seed_forgery(value));
            prop_assert!(!proof.verify(&root, pk, &forged));
            // Nor must the right value under the wrong root.
            let wrong_root = sha256(root.as_bytes());
            prop_assert!(!proof.verify(&wrong_root, pk, &vh));
        }
    }

    /// An updated record's proof stops verifying the moment the tree moves
    /// on — stale (proof, value) pairs are rejected against the new root.
    #[test]
    fn merkle_update_invalidates_stale_proofs(
        key_id in 0u8..16,
        old_seed in any::<u64>(),
        new_seed in any::<u64>(),
        background in prop::collection::vec(kv_op(), 0..40),
    ) {
        let pk = pkey(false, &format!("key{key_id:02}"));
        let mut tree = MerkleKv::new();
        for (replicated, id, seed) in &background {
            tree.insert(
                pkey(*replicated, &format!("key{id:02}")),
                record_value_hash(&seed.to_le_bytes()),
            );
        }
        let old_value = old_seed.to_le_bytes();
        tree.insert(pk.clone(), record_value_hash(&old_value));
        let old_root = tree.root();
        let old_proof = tree.prove(&pk).expect("present");
        prop_assert!(old_proof.verify(&old_root, &pk, &record_value_hash(&old_value)));

        // Update the record (append-only value streams never repeat seeds).
        let new_value = new_seed.to_le_bytes();
        tree.insert(pk.clone(), record_value_hash(&new_value));
        let new_root = tree.root();
        let new_proof = tree.prove(&pk).expect("still present");
        prop_assert!(new_proof.verify(&new_root, &pk, &record_value_hash(&new_value)));
        if old_seed != new_seed {
            prop_assert_ne!(old_root, new_root, "update must move the root");
            prop_assert!(
                !old_proof.verify(&new_root, &pk, &record_value_hash(&old_value)),
                "replayed stale proof+value must fail against the new root"
            );
        }
    }

    /// WAL/SSTable recovery: whatever mix of flushed and unflushed state the
    /// process dies with, reopening the directory reproduces the model
    /// exactly — point reads, full scans, and the write sequence number.
    #[test]
    fn store_recovers_from_wal_and_sstables(
        ops in prop::collection::vec((0u8..4, 0u8..20, any::<u16>()), 1..120),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "grub-recovery-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let opts = Options {
            memtable_bytes: 256, // tiny: force frequent organic flushes too
            l0_compaction_trigger: 2,
            ..Options::default()
        };
        let mut db = Db::open(&dir, opts).expect("open");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (kind, key_id, v) in &ops {
            let key = format!("k{key_id:02}").into_bytes();
            match kind {
                0 | 1 => {
                    let value = v.to_le_bytes().to_vec();
                    db.put(key.clone(), value.clone()).expect("put");
                    model.insert(key, value);
                }
                2 => {
                    db.delete(&key).expect("delete");
                    model.remove(&key);
                }
                _ => db.flush().expect("flush"),
            }
        }
        let sequence = db.sequence();
        drop(db); // "crash": unflushed tail lives only in the WAL

        let reopened = Db::open(&dir, opts).expect("recover");
        prop_assert_eq!(
            reopened.sequence(),
            sequence,
            "recovery must restore the write sequence"
        );
        for (key, value) in &model {
            prop_assert_eq!(
                reopened.get(key).expect("get"),
                Some(value.clone()),
                "key {:?} lost in recovery",
                String::from_utf8_lossy(key)
            );
        }
        let scanned = reopened.scan(None, None).expect("scan");
        let expect: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect, "recovered scan must match the model");
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovery is idempotent: reopening twice (a crash during/after a clean
    /// recovery) yields the same contents again.
    #[test]
    fn store_recovery_is_idempotent(
        ops in prop::collection::vec((0u8..20, any::<u16>()), 1..60),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "grub-reopen-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        let opts = Options {
            memtable_bytes: 256,
            l0_compaction_trigger: 2,
            ..Options::default()
        };
        let mut db = Db::open(&dir, opts).expect("open");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (key_id, v) in &ops {
            let key = format!("k{key_id:02}").into_bytes();
            let value = v.to_le_bytes().to_vec();
            db.put(key.clone(), value.clone()).expect("put");
            model.insert(key, value);
        }
        drop(db);
        for _ in 0..2 {
            let db = Db::open(&dir, opts).expect("reopen");
            let scanned = db.scan(None, None).expect("scan");
            let expect: Vec<_> = model.clone().into_iter().collect();
            prop_assert_eq!(scanned, expect);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A deterministic different-value forgery.
fn seed_forgery(value: &[u8; 8]) -> [u8; 8] {
    let mut forged = *value;
    forged[0] ^= 0xFF;
    forged
}

/// A small mixed-skew fleet on persistent stores, for the engine-level
/// crash × recovery property below.
fn crash_fleet(root: &std::path::Path, total_ops: usize) -> Vec<grub::engine::FeedSpec> {
    use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
    let mut specs = zipfian_ratio_specs(4, total_ops, DEMO_RATIOS, &demo_policies());
    for spec in &mut specs {
        spec.config = spec
            .config
            .clone()
            .store_at(root.join(&spec.tenant))
            .store_options(grub::store::Options {
                // Tiny memtable: even the read-leaning tenants of a short
                // fleet flush SSTables, so the mid-flush point can trip.
                memtable_bytes: 128,
                l0_compaction_trigger: 2,
                ..grub::store::Options::default()
            });
    }
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Engine-level crash × recovery: for an arbitrary crash point,
    /// scheduler mode, batching mode, and fleet size, a run killed at the
    /// point and re-executed by a fresh engine — checkpointed against the
    /// surviving chain — finishes with the same chain digest as an
    /// uninterrupted run of the same specs.
    #[test]
    fn crashed_engine_recovers_to_the_clean_chain_digest(
        point_idx in 0usize..6,
        parallel in any::<bool>(),
        read_batching in any::<bool>(),
        total_ops in 96usize..192,
    ) {
        use grub::engine::{EngineConfig, ExecMode, FeedEngine};
        use grub::fault::{FaultPlan, FaultPoint};

        let _guard = grub::fault::injection_lock();
        let point = FaultPoint::ALL[point_idx];
        let config = {
            let mut c = EngineConfig::new(2);
            c.exec = if parallel { ExecMode::Parallel } else { ExecMode::Sequential };
            c.read_batching = read_batching;
            c
        };
        let root = |tag: &str| std::env::temp_dir().join(format!(
            "grub-engcrash-{tag}-{}-{}", std::process::id(), rand::random::<u64>()
        ));
        let (clean_root, crash_root, recover_root) = (root("clean"), root("crash"), root("rec"));

        let mut clean = FeedEngine::new(&config, crash_fleet(&clean_root, total_ops)).unwrap();
        clean.run_rounds().unwrap();
        let clean_digest = clean.chain().chain_digest();
        drop(clean);

        let mut crashed = FeedEngine::new(&config, crash_fleet(&crash_root, total_ops)).unwrap();
        grub::fault::arm(FaultPlan::at(point));
        let died = crashed.run_rounds();
        prop_assert!(died.is_err(), "{point:?}: armed crash point did not kill the run");
        prop_assert!(!grub::fault::is_armed(), "{point:?}: run died but the point never tripped");
        let surviving_height = crashed.chain().height();
        let surviving_digest = crashed.chain().chain_digest();
        drop(crashed);

        let mut recovered = FeedEngine::new(&config, crash_fleet(&recover_root, total_ops)).unwrap();
        if surviving_height > recovered.chain().height() {
            recovered.expect_digest_at(surviving_height, surviving_digest);
        } else {
            prop_assert_eq!(recovered.chain().chain_digest(), surviving_digest);
        }
        recovered.run_rounds().unwrap();
        prop_assert_eq!(
            recovered.chain().chain_digest(),
            clean_digest,
            "{:?}: recovered chain diverges from the clean run", point
        );
        drop(recovered);
        for dir in [clean_root, crash_root, recover_root] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Confirmation-grid convergence: for an arbitrary reorg seed,
    /// confirmation depth, inclusion-latency process, scheduler mode, and
    /// fleet size, the reorged run converges to the exact digest and height
    /// of the never-forked run under the same confirmation axes — and every
    /// reorg resubmits exactly the set of transactions it abandoned.
    #[test]
    fn confirmed_reorged_grids_converge_to_the_canonical_digest(
        reorg_seed in 1u64..64,
        confirm_depth in 0u64..4,
        latency_on in any::<bool>(),
        latency_seed in 1u64..32,
        latency_delay in 1u64..3,
        parallel in any::<bool>(),
        feeds in 3usize..7,
    ) {
        use grub::chain::ChainConfig;
        use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
        use grub::engine::{EngineConfig, ExecMode, FeedEngine};

        let fleet = || zipfian_ratio_specs(feeds, 144, DEMO_RATIOS, &demo_policies());
        let config = |chain: ChainConfig| {
            let mut c = EngineConfig::new(2);
            c.exec = if parallel { ExecMode::Parallel } else { ExecMode::Sequential };
            c.batching = true;
            c.chain = chain;
            c
        };
        let latency = latency_on.then_some((latency_seed, latency_delay));
        let base = {
            let mut chain = ChainConfig::default().confirm_depth(confirm_depth);
            if let Some((seed, max_delay)) = latency {
                chain = chain.latency(seed, max_delay);
            }
            chain
        };

        let (_, straight) = FeedEngine::new(&config(base), fleet())
            .unwrap()
            .run_with_chain()
            .unwrap();
        let (_, forked) = FeedEngine::new(&config(base.reorg(reorg_seed, 4, 2)), fleet())
            .unwrap()
            .run_with_chain()
            .unwrap();

        for (i, ev) in forked.reorg_events().iter().enumerate() {
            prop_assert_eq!(
                &ev.resubmitted,
                &ev.abandoned,
                "reorg {} resubmitted a different set than it abandoned", i
            );
        }
        prop_assert_eq!(
            forked.chain_digest(),
            straight.chain_digest(),
            "grid (seed {}, depth {}, latency {:?}, {} feeds) diverged",
            reorg_seed, confirm_depth, latency, feeds
        );
        prop_assert_eq!(forked.height(), straight.height());
        prop_assert_eq!(forked.confirmation_lag(), 0);
    }
}
