//! The ingestion layer's equivalence net: streamed == materialized,
//! byte for byte, for every workload generator and for full system runs.
//!
//! Three layers of guarantees:
//!
//! 1. **Generator equivalence** — every generator's [`OpSource`] drained
//!    into a [`Trace`] is byte-identical to its legacy `generate()` output
//!    for the same parameters, and a [`OpSource::reset`] replay emits the
//!    identical sequence again (the replay contract).
//! 2. **System equivalence** — a single-feed [`GrubSystem`] run driven by a
//!    source mines the byte-identical chain (`chain_digest`) a trace-driven
//!    run mines.
//! 3. **Combinator laws** — the tempo reshaper and the multiplex interleave
//!    preserve op content and replay deterministically.

use grub::core::policy::PolicyKind;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::workload::btcrelay::BtcRelayTrace;
use grub::workload::multiplex::Multiplex;
use grub::workload::oracle::OracleTrace;
use grub::workload::ratio::{MultiKeyRatio, RatioWorkload};
use grub::workload::source::{OpSource, PeekableSource};
use grub::workload::tempo::{ReadTempo, TempoSource};
use grub::workload::ycsb::{YcsbKind, YcsbRunner};
use grub::workload::Trace;

/// Every generator family, as `(name, source, legacy generate() trace)`.
fn all_generators() -> Vec<(&'static str, Box<dyn OpSource>, Trace)> {
    let ratio = RatioWorkload::new("r", 4.0).seed(5);
    let mix = MultiKeyRatio::new(vec![
        ("hot".into(), 16.0),
        ("cold".into(), 0.125),
        ("warm".into(), 1.0),
    ])
    .seed(7);
    let oracle = OracleTrace::new().writes(150).assets(2).seed(9);
    let btc = BtcRelayTrace::new()
        .blocks(300)
        .boost_reads(100..200, 3.0)
        .seed(11);
    let ycsb_phases = vec![(YcsbKind::A, 100), (YcsbKind::F, 100), (YcsbKind::E, 50)];
    let mut ycsb_runner = YcsbRunner::new(128, 32, 13);
    let ycsb_trace = {
        let mut t = Trace::new();
        for &(kind, ops) in &ycsb_phases {
            t.extend(ycsb_runner.generate(kind, ops));
        }
        t
    };
    vec![
        ("ratio", Box::new(ratio.source(24)), ratio.generate(24)),
        ("ratio-mix", Box::new(mix.source(10)), mix.generate(10)),
        ("oracle", Box::new(oracle.source()), oracle.generate()),
        ("btcrelay", Box::new(btc.source()), btc.generate()),
        (
            "ycsb",
            Box::new(YcsbRunner::new(128, 32, 13).into_source(ycsb_phases)),
            ycsb_trace,
        ),
    ]
}

/// Layer 1: streamed == materialized for every generator, and a reset
/// replay is byte-identical.
#[test]
fn every_generator_source_is_byte_identical_to_generate() {
    for (name, mut source, legacy) in all_generators() {
        let streamed = Trace::from_source(&mut source);
        assert_eq!(streamed, legacy, "{name}: streamed != generate()");
        assert!(
            !streamed.ops.is_empty(),
            "{name}: equivalence on an empty trace proves nothing"
        );
        source.reset();
        let replayed = Trace::from_source(&mut source);
        assert_eq!(replayed, legacy, "{name}: reset replay diverged");
    }
}

/// Layer 1b: a source cloned mid-stream continues exactly where the
/// original would, and the original is unaffected — what lets schedulers
/// materialize (`FeedSpec::materialized`) without perturbing the feed.
#[test]
fn mid_stream_clones_fork_without_interference() {
    for (name, mut source, legacy) in all_generators() {
        let skip = legacy.ops.len() / 3;
        for _ in 0..skip {
            source.next_op();
        }
        let mut fork = source.clone_box();
        let from_fork = Trace::from_source(&mut fork);
        let from_original = Trace::from_source(&mut source);
        assert_eq!(from_fork, from_original, "{name}: fork diverged");
        assert_eq!(
            from_original.ops[..],
            legacy.ops[skip..],
            "{name}: tail after fork mismatch"
        );
    }
}

/// Layer 1c: the one-op lookahead wrapper used by the engine's scheduler
/// is transparent — wrapping any generator changes nothing.
#[test]
fn peekable_wrapper_is_transparent_for_every_generator() {
    for (name, source, legacy) in all_generators() {
        let mut peek = PeekableSource::new(source);
        assert_eq!(peek.is_exhausted(), legacy.ops.is_empty(), "{name}");
        assert_eq!(Trace::from_source(&mut peek), legacy, "{name}");
        assert!(peek.is_exhausted(), "{name}");
    }
}

/// Layer 2: a source-driven single-feed run mines the byte-identical chain
/// a trace-driven run mines — across policies and including a trailing
/// partial epoch.
#[test]
fn system_runs_from_sources_match_trace_runs_byte_for_byte() {
    let mix = MultiKeyRatio::new(vec![("a".into(), 8.0), ("b".into(), 0.5)]).seed(17);
    // 11 cycles of (1+8) + (2+1) = 12 ops → 132 ops: not a multiple of the
    // 32-op epoch, so the trailing partial epoch is exercised too.
    for policy in [
        PolicyKind::Bl1,
        PolicyKind::Bl2,
        PolicyKind::Memoryless { k: 2 },
        PolicyKind::SelfTuning { window: 16 },
    ] {
        let cfg = SystemConfig::new(policy.clone());
        let mut trace_run = GrubSystem::new(&cfg).expect("build");
        trace_run.drive(&mix.generate(11)).expect("trace run");
        let mut source_run = GrubSystem::new(&cfg).expect("build");
        source_run
            .drive_source(&mut mix.source(11))
            .expect("source run");
        assert_eq!(
            trace_run.chain().chain_digest(),
            source_run.chain().chain_digest(),
            "{policy:?}: source-driven chain diverged from trace-driven"
        );
    }
}

/// Layer 3: the multiplex interleave emits exactly the union of its lanes'
/// budgets, replays identically, and its arrival mix honors the zipfian
/// weights (hot lane leads).
#[test]
fn interleaved_multiplex_stream_is_deterministic_and_complete() {
    let m = Multiplex::new(5, 1_000).zipfian(0.99);
    let mk = |tenant: usize, ops: usize| -> Box<dyn OpSource> {
        Box::new(
            RatioWorkload::new(format!("t{tenant}"), 1.0)
                .seed(tenant as u64 + 1)
                .source(ops / 2),
        )
    };
    let mut merged = m.interleaved(99, mk);
    let first = Trace::from_source(&mut merged);
    merged.reset();
    let second = Trace::from_source(&mut merged);
    assert_eq!(first, second, "interleave replay diverged");
    // Each lane's ops all arrive: per-tenant counts match the budgets.
    for (tenant, budget) in m.ops_per_tenant().iter().enumerate() {
        let arrived = first
            .ops
            .iter()
            .filter(|o| o.key() == format!("t{tenant}"))
            .count();
        assert_eq!(arrived, (budget / 2) * 2, "tenant {tenant}");
    }
    // And the hot lane leads the early arrivals: with θ = 0.99 over five
    // tenants its draw share is ≈ 43%, far above any single tail lane.
    let early = first.ops.len() / 10;
    let count_early = |t: &str| first.ops[..early].iter().filter(|o| o.key() == t).count();
    let hot_early = count_early("t0");
    assert!(
        3 * hot_early > early,
        "hot tenant carried {hot_early}/{early} early arrivals"
    );
    for tail in 1..5 {
        assert!(
            hot_early > count_early(&format!("t{tail}")),
            "hot tenant must out-arrive tenant {tail}"
        );
    }
}

/// Layer 3b: tempo combinators preserve content (same writes in the same
/// order, same read multiset) while provably moving arrival timing.
#[test]
fn tempo_variants_preserve_content_but_change_timing() {
    let mk_inner = || MultiKeyRatio::new(vec![("x".into(), 4.0), ("y".into(), 1.0)]).source(12);
    let plain = Trace::from_source(&mut mk_inner());
    let mut bursty = TempoSource::new(Box::new(mk_inner()), ReadTempo::Bursty, 16);
    let mut uniform = TempoSource::new(Box::new(mk_inner()), ReadTempo::Uniform, 16);
    let bursty = Trace::from_source(&mut bursty);
    let uniform = Trace::from_source(&mut uniform);
    for (label, shaped) in [("bursty", &bursty), ("uniform", &uniform)] {
        assert_eq!(shaped.ops.len(), plain.ops.len(), "{label}");
        assert_eq!(shaped.write_count(), plain.write_count(), "{label}");
        let writes = |t: &Trace| {
            t.ops
                .iter()
                .filter(|o| o.is_write())
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(writes(shaped), writes(&plain), "{label}: write order moved");
    }
    assert_ne!(
        bursty, uniform,
        "the two tempos must produce different arrival orders"
    );
}
