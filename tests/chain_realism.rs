//! The chain-realism subsystem end to end: reorgs, a volatile gas-price
//! process, and mempool congestion driven through the multi-tenant engine
//! and the single-feed harness.
//!
//! * **Reorg transparency** — an engine run on a reorg-capable chain (forks
//!   mined, rolled back, canonically re-committed) converges to the exact
//!   chain digest, height, and Gas report of the straight-line run, in both
//!   scheduler modes and all three batching modes.
//! * **Congestion exactness** — a bounded mempool delays and splits shard
//!   batches across blocks by tenant priority without disturbing a single
//!   unit of Gas attribution: the congested run renders a byte-identical
//!   report table.
//! * **Fee determinism** — the seeded gas-price process reprices runs
//!   deterministically and surfaces its tape in the per-round metrics.
//! * **Fee-aware deferral** — a fee-aware policy wrapper holds replica
//!   installs out of expensive windows and strictly undercuts its
//!   fee-blind inner policy on a spiked schedule.

use grub::chain::ChainConfig;
use grub::core::policy::PolicyKind;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
use grub::engine::{EngineConfig, ExecMode, FeedEngine, FeedSpec, QuotaTier, TenantBudget};
use grub::gas::{FeeProcess, FeeRegime, BASE_PRICE_PERMILLE};
use grub::workload::{Op, Trace, ValueSpec};

fn fleet() -> Vec<FeedSpec> {
    zipfian_ratio_specs(6, 240, DEMO_RATIOS, &demo_policies())
}

fn engine_config(mode: ExecMode, batching: bool, read_batching: bool) -> EngineConfig {
    let mut config = EngineConfig::new(2);
    config.exec = mode;
    config.batching = batching;
    config.read_batching = read_batching;
    config
}

/// The acceptance bar for the reorg axis: in BOTH scheduler modes and ALL
/// three batching modes, a run that suffers seeded forks (mined, rolled
/// back, re-committed) is byte-identical — chain digest, height, and the
/// rendered Gas report — to the run that never forked.
#[test]
fn reorg_replay_is_digest_identical_in_every_engine_mode() {
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        for (batching, read_batching) in [(false, false), (true, false), (true, true)] {
            let label = format!("{mode:?}/batching={batching}/read_batching={read_batching}");
            let plain = engine_config(mode, batching, read_batching);
            let (plain_report, plain_chain) = FeedEngine::new(&plain, fleet())
                .unwrap()
                .run_with_chain()
                .unwrap_or_else(|e| panic!("{label}: straight-line run failed: {e}"));

            let mut forked = engine_config(mode, batching, read_batching);
            forked.chain = ChainConfig::default().reorg(7, 4, 2);
            let (forked_report, forked_chain) = FeedEngine::new(&forked, fleet())
                .unwrap()
                .run_with_chain()
                .unwrap_or_else(|e| panic!("{label}: reorg run failed: {e}"));

            assert!(
                !forked_chain.reorg_events().is_empty(),
                "{label}: the reorg process never forked — the axis tested nothing"
            );
            assert!(
                forked_chain
                    .reorg_events()
                    .iter()
                    .all(|e| e.depth >= 1 && e.depth <= 2),
                "{label}: fork depths must respect max_depth"
            );
            assert_eq!(
                forked_chain.chain_digest(),
                plain_chain.chain_digest(),
                "{label}: reorg-and-replay must converge to the straight-line digest"
            );
            assert_eq!(
                forked_chain.height(),
                plain_chain.height(),
                "{label}: canonical height must match the straight-line run"
            );
            assert_eq!(
                forked_report.render_table(),
                plain_report.render_table(),
                "{label}: the Gas report must be untouched by reorgs"
            );
        }
    }
}

/// A bounded mempool (one transaction per block) forces a spilled shard
/// batch — which normally rides one block as several transactions — to
/// queue and split across blocks in tenant-priority order. Completion,
/// per-tenant Gas attribution, and quota accounting must be *exactly* the
/// uncongested run's — only the block packing (and hence the chain digest
/// and height) may change.
#[test]
fn congested_mempool_splits_blocks_with_exact_attribution() {
    // The spill fleet: 14 write-heavy BL2 feeds with 4 KiB values on ONE
    // shard overflow the batch payload bound every round, so each round
    // plans several update transactions — the co-blocked traffic a block
    // cap actually bites on. Tiers rotate so congestion ordering crosses
    // priority classes, with budgets too large to ever park.
    let tiered_fleet = || -> Vec<FeedSpec> {
        let tiers = [QuotaTier::High, QuotaTier::Standard, QuotaTier::Low];
        (0..14)
            .map(|i| {
                let mut config = SystemConfig::new(PolicyKind::Bl2);
                config.epoch_ops = 4;
                FeedSpec::new(
                    format!("bulk-{i:02}"),
                    config,
                    grub::workload::ratio::RatioWorkload::new(format!("bulk-{i:02}-key"), 0.0)
                        .value_len(4096)
                        .generate(8),
                )
                .with_budget(TenantBudget::per_round(100_000_000).tier(tiers[i % 3]))
            })
            .collect()
    };
    let mut plain = engine_config(ExecMode::Sequential, true, true);
    plain.shards = 1;
    let (plain_report, plain_chain) = FeedEngine::new(&plain, tiered_fleet())
        .unwrap()
        .run_with_chain()
        .unwrap();
    assert!(
        plain_report.shard_update_txs[0] > plain_report.rounds,
        "the fleet must actually spill for the cap to have anything to split"
    );

    let mut congested = engine_config(ExecMode::Sequential, true, true);
    congested.shards = 1;
    congested.chain = ChainConfig::default().mempool(1);
    let (congested_report, congested_chain) = FeedEngine::new(&congested, tiered_fleet())
        .unwrap()
        .run_with_chain()
        .unwrap();

    assert!(
        congested_chain.height() > plain_chain.height(),
        "a one-transaction block cap must force more, smaller blocks \
         ({} congested vs {} plain)",
        congested_chain.height(),
        plain_chain.height()
    );
    assert_eq!(
        congested_report.render_table(),
        plain_report.render_table(),
        "congestion may repack blocks but must not move a unit of Gas"
    );
    // The partition invariant under splitting: tenant batch shares still
    // sum exactly to the shard totals.
    let tenant_updates: u64 = congested_report
        .tenants
        .iter()
        .map(|t| t.batched_update_gas)
        .sum();
    let tenant_delivers: u64 = congested_report
        .tenants
        .iter()
        .map(|t| t.batched_deliver_gas)
        .sum();
    assert_eq!(
        tenant_updates,
        congested_report.shard_update_gas.iter().sum::<u64>(),
        "update shares must partition shard totals under congestion"
    );
    assert_eq!(
        tenant_delivers,
        congested_report.shard_deliver_gas.iter().sum::<u64>(),
        "deliver shares must partition shard totals under congestion"
    );
}

/// The seeded fee process reprices an engine run deterministically: two
/// identical runs agree byte for byte, a never-below-base schedule strictly
/// raises total Gas, and the per-round metrics expose the fee tape.
#[test]
fn fee_schedule_reprices_runs_deterministically() {
    let fee = FeeProcess {
        regime: FeeRegime::Step {
            period: 5,
            low: 1000,
            high: 2000,
        },
        seed: 3,
    };
    let flat = engine_config(ExecMode::Sequential, true, true);
    let (flat_report, _) = FeedEngine::new(&flat, fleet())
        .unwrap()
        .run_with_chain()
        .unwrap();

    let priced_run = || {
        let mut config = engine_config(ExecMode::Sequential, true, true);
        config.chain = ChainConfig::default().fee(fee);
        FeedEngine::new(&config, fleet())
            .unwrap()
            .run_with_chain()
            .unwrap()
    };
    let (first_report, first_chain) = priced_run();
    let (second_report, second_chain) = priced_run();

    assert_eq!(
        first_chain.chain_digest(),
        second_chain.chain_digest(),
        "the fee process must be a pure function of (seed, height)"
    );
    assert_eq!(first_report.render_table(), second_report.render_table());
    assert!(
        first_report.feed_gas_total() > flat_report.feed_gas_total(),
        "a schedule that never dips below base price must cost strictly more \
         ({} priced vs {} flat)",
        first_report.feed_gas_total(),
        flat_report.feed_gas_total()
    );
    // The metrics tape saw both plateaus of the step schedule.
    let low = first_report
        .metrics
        .iter()
        .map(|m| m.fee_low_permille)
        .min()
        .unwrap();
    let high = first_report
        .metrics
        .iter()
        .map(|m| m.fee_high_permille)
        .max()
        .unwrap();
    assert_eq!(low, 1000, "metrics must record the cheap plateau");
    assert_eq!(high, 2000, "metrics must record the expensive plateau");
    assert!(
        flat_report
            .metrics
            .iter()
            .all(|m| m.fee_low_permille == BASE_PRICE_PERMILLE
                && m.fee_high_permille == BASE_PRICE_PERMILLE),
        "a flat run's fee tape is pinned to base price"
    );
}

/// A five-epoch single-feed trace shaped so deferral pays: the install
/// decision matures while Gas is expensive, the workload then goes quiet,
/// and the reads resume after the price falls. The hot record is 8 words
/// so the install itself (`Cinsert = 20000·X`) is what the price multiplies.
fn deferral_trace(epoch_ops: usize) -> Trace {
    let write = |key: &str, len: usize, seed: u64| Op::Write {
        key: key.into(),
        value: ValueSpec::new(len, seed),
    };
    let read = |key: &str| Op::Read { key: key.into() };
    let mut ops = Vec::new();
    // E0 warm-up: establish the feed, no reads of the hot key.
    ops.push(write("hot", 256, 1));
    for i in 0..epoch_ops - 1 {
        ops.push(write("cold", 32, 10 + i as u64));
    }
    // E1: two reads drive the install decision — while expensive. The
    // fee-blind policy installs here at 4× price; the fee-aware one defers.
    for _ in 0..2 {
        ops.push(read("hot"));
    }
    for i in 0..epoch_ops - 2 {
        ops.push(write("cold", 32, 20 + i as u64));
    }
    // E2: quiet for the hot key; the price falls during this epoch.
    for i in 0..epoch_ops {
        ops.push(write("cold", 32, 30 + i as u64));
    }
    // E3: the deferred install resolves on the first hot sighting at the
    // cheap price (two delivered reads, then the install actuates).
    for _ in 0..2 {
        ops.push(read("hot"));
    }
    for i in 0..epoch_ops - 2 {
        ops.push(write("cold", 32, 40 + i as u64));
    }
    // E4: the read traffic the replica exists to serve — both runs are
    // replicated by now and pay identical replica-read costs.
    for _ in 0..epoch_ops {
        ops.push(read("hot"));
    }
    Trace { ops }
}

/// Satellite: under a seeded spike schedule a fee-aware wrapper defers the
/// replica install out of the expensive window and spends strictly less
/// total feed Gas than its fee-blind inner policy — deterministically.
#[test]
fn fee_aware_policy_defers_installs_into_cheap_windows() {
    // High plateau first (seed chosen so phase 0 is expensive): heights
    // 0..5 cost 4×, heights 5..10 cost base — sized so the whole E2–E4
    // tail of the trace lands in the cheap window.
    let regime = FeeRegime::Step {
        period: 5,
        low: 1000,
        high: 4000,
    };
    let seed = (0..64)
        .find(|&s| {
            let p = FeeProcess { regime, seed: s };
            p.price_permille(0) == 4000 && p.price_permille(6) == 1000
        })
        .expect("some seed phases the step high-first");
    let fee = FeeProcess { regime, seed };

    let run = |policy: PolicyKind| {
        let mut config = SystemConfig::new(policy);
        config.epoch_ops = 8;
        config.chain = ChainConfig::default().fee(fee);
        GrubSystem::run_trace(&deferral_trace(8), &config).expect("run succeeds")
    };

    let blind = run(PolicyKind::Memoryless { k: 2 });
    let aware = run(PolicyKind::FeeAware {
        threshold_permille: 1500,
        inner: Box::new(PolicyKind::Memoryless { k: 2 }),
    });
    let rerun = run(PolicyKind::FeeAware {
        threshold_permille: 1500,
        inner: Box::new(PolicyKind::Memoryless { k: 2 }),
    });

    assert_eq!(
        aware.feed_gas_total(),
        rerun.feed_gas_total(),
        "fee-aware deferral must be deterministic across reruns"
    );
    assert!(
        aware.feed_gas_total() < blind.feed_gas_total(),
        "deferring the install into the cheap window must cost strictly less \
         ({} fee-aware vs {} fee-blind)",
        aware.feed_gas_total(),
        blind.feed_gas_total()
    );
}
