//! The policy × workload scenario matrix — the regression net for GRuB's
//! headline claims.
//!
//! Every replication policy ([`PolicyKind`] variant, plus the offline-optimal
//! reference) is driven against every workload family the paper evaluates:
//!
//! * `ratio/<x>` — fixed read/write ratios sweeping write-only through
//!   read-heavy (§2.3, §5.1);
//! * `ratio-mix` — the ingestion layer's multi-key ratio mix: one key per
//!   ratio class, interleaved one op per key per turn, so a single feed
//!   carries write-heavy, balanced, and read-heavy keys at once;
//! * `tempo/<bursty|uniform>` — the live-reads tempo variants: the same
//!   balanced mix replayed at live tempo (one consumer transaction per
//!   block) with its reads re-timed by the `TempoSource` combinator into
//!   one burst per window vs an even spread;
//! * `oracle` — the synthesized ethPriceOracle trace (Table 1, Figure 2);
//! * `btcrelay` — the synthesized BtcRelay block feed (Table 6, Appendix D);
//! * `ycsb/<A..F>` — all six YCSB core workloads over a preloaded dataset
//!   (§5.2): A/B/C zipfian read/update mixes, D latest-read with inserts,
//!   E scan-heavy, F read-modify-write.
//!
//! Assertions, per the paper:
//!
//! 1. every combination runs end to end with zero rejected deliveries and
//!    plausible Gas accounting (the matrix smoke test);
//! 2. the memoryless algorithm's total feed Gas stays within its
//!    2-competitive bound of the offline optimum (Theorem A.1);
//! 3. GRuB beats the *worse* of BL1/BL2 on every skewed workload (the
//!    "never much worse than either static strategy" motivation, §2.3);
//! 4. the replication state converges: replica ON under read-heavy traffic,
//!    OFF under write-heavy traffic.

use std::collections::BTreeMap;

use grub::chain::ChainConfig;
use grub::core::policy::{OfflineOptimal, PolicyKind};
use grub::core::system::{GrubSystem, SystemConfig};
use grub::gas::{FeeProcess, FeeRegime, GasSchedule};
use grub::merkle::ReplState;
use grub::workload::btcrelay::BtcRelayTrace;
use grub::workload::oracle::OracleTrace;
use grub::workload::ratio::{MultiKeyRatio, RatioWorkload};
use grub::workload::tempo::{ReadTempo, TempoSource};
use grub::workload::ycsb::{self, YcsbKind, YcsbRunner};
use grub::workload::Trace;

/// One workload scenario: a named trace plus the preload it assumes.
struct Scenario {
    name: String,
    trace: Trace,
    preload: Vec<(String, Vec<u8>)>,
    /// `Some(true)` = read-heavy (replica expected ON for the hot key),
    /// `Some(false)` = write-heavy (replica expected OFF); `None` = mixed.
    read_heavy: Option<bool>,
    /// Replay reads one per block (the §4 case studies' tempo) instead of
    /// coalescing them per epoch — the mode under which the tempo variants
    /// actually differ.
    live_reads: bool,
}

impl Scenario {
    fn config(&self, policy: PolicyKind) -> SystemConfig {
        let config = SystemConfig::new(policy).preload(self.preload.clone());
        if self.live_reads {
            config.live_reads()
        } else {
            config
        }
    }

    fn run(&self, policy: PolicyKind) -> grub::core::metrics::RunReport {
        GrubSystem::run_trace(&self.trace, &self.config(policy.clone()))
            .unwrap_or_else(|e| panic!("{} under {policy:?} failed: {e}", self.name))
    }

    fn run_offline_optimal(&self) -> grub::core::metrics::RunReport {
        let schedule = GasSchedule::default();
        let policy = OfflineOptimal::from_trace(&self.trace, schedule.two_competitive_k());
        // BL1 placebo: preload lands not-replicated, exactly as for the
        // adaptive policies this reference is compared against.
        GrubSystem::run_trace_with_policy(
            &self.trace,
            &self.config(PolicyKind::Bl1),
            Box::new(policy),
        )
        .unwrap_or_else(|e| panic!("{} under offline-optimal failed: {e}", self.name))
    }
}

/// The ratio sweep: the paper's §5.1 microbenchmark axis, one scenario per
/// read/write ratio, trimmed to keep the matrix fast.
const RATIO_SWEEP: &[(f64, usize)] = &[
    // (ratio, cycles) — sized for ~64–260 ops each.
    (0.0, 64),
    (0.125, 12),
    (0.5, 32),
    (1.0, 48),
    (4.0, 24),
    (16.0, 8),
    (64.0, 4),
];

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for &(ratio, cycles) in RATIO_SWEEP {
        out.push(Scenario {
            name: format!("ratio/{ratio}"),
            trace: RatioWorkload::new("feed", ratio).generate(cycles),
            preload: Vec::new(),
            read_heavy: if ratio >= 16.0 {
                Some(true)
            } else if ratio <= 0.125 {
                Some(false)
            } else {
                None
            },
            live_reads: false,
        });
    }
    out.push(Scenario {
        name: "oracle".into(),
        trace: OracleTrace::new().writes(24).assets(2).seed(11).generate(),
        preload: Vec::new(),
        read_heavy: None,
        live_reads: false,
    });
    out.push(Scenario {
        name: "btcrelay".into(),
        trace: BtcRelayTrace::new().blocks(32).seed(13).generate(),
        preload: Vec::new(),
        read_heavy: None,
        live_reads: false,
    });
    // The ingestion layer's stream-native dimensions. `ratio-mix`: one feed
    // whose key set spans the ratio classes (write-heavy, balanced,
    // read-heavy), interleaved per op by MultiKeyRatio.
    out.push(Scenario {
        name: "ratio-mix".into(),
        trace: MultiKeyRatio::new(vec![
            ("mix-w".into(), 0.125),
            ("mix-b".into(), 1.0),
            ("mix-r".into(), 16.0),
        ])
        .seed(19)
        .generate(6),
        preload: Vec::new(),
        read_heavy: None,
        live_reads: false,
    });
    // The live-reads tempo variants: the same balanced mix, reads re-timed
    // by the TempoSource combinator and replayed one read per block, where
    // arrival timing actually changes what the monitor has seen.
    for (label, tempo) in [
        ("bursty", ReadTempo::Bursty),
        ("uniform", ReadTempo::Uniform),
    ] {
        let inner = MultiKeyRatio::new(vec![("feed".into(), 2.0), ("side".into(), 0.5)])
            .seed(29)
            .source(8);
        let mut shaped = TempoSource::new(Box::new(inner), tempo, 12);
        out.push(Scenario {
            name: format!("tempo/{label}"),
            trace: Trace::from_source(&mut shaped),
            preload: Vec::new(),
            read_heavy: None,
            live_reads: true,
        });
    }
    let records = 48u64;
    let record_len = 32usize;
    let preload: Vec<(String, Vec<u8>)> = ycsb::preload(records, record_len, 7)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    for kind in [
        YcsbKind::A,
        YcsbKind::B,
        YcsbKind::C,
        YcsbKind::D,
        YcsbKind::E,
        YcsbKind::F,
    ] {
        // E's scans are capped well below the YCSB default of 100 to keep
        // the 105-combination matrix fast; the scan path itself is the same.
        out.push(Scenario {
            name: format!("ycsb/{kind:?}"),
            trace: YcsbRunner::new(records, record_len, 17)
                .max_scan_len(8)
                .generate(kind, 128),
            preload: preload.clone(),
            read_heavy: None,
            live_reads: false,
        });
    }
    out
}

fn policies() -> Vec<(&'static str, PolicyKind)> {
    vec![
        ("bl1", PolicyKind::Bl1),
        ("bl2", PolicyKind::Bl2),
        ("memoryless", PolicyKind::Memoryless { k: 2 }),
        (
            "memorizing",
            PolicyKind::Memorizing {
                k_prime: 2.3,
                d: 2.0,
            },
        ),
        (
            "adaptive-k1",
            PolicyKind::Adaptive {
                dual: false,
                window: 4,
            },
        ),
        (
            "adaptive-k2",
            PolicyKind::Adaptive {
                dual: true,
                window: 4,
            },
        ),
        ("self-tuning", PolicyKind::SelfTuning { window: 16 }),
    ]
}

/// Every policy drives every workload to completion with honest-SP
/// invariants intact. 7 policies × 18 workloads = 126 combinations
/// (ratio sweep, ratio-mix, the two live-reads tempo variants, oracle,
/// btcrelay, YCSB A–F).
#[test]
fn full_matrix_runs_every_policy_on_every_workload() {
    let scenarios = scenarios();
    let policies = policies();
    let mut combos = 0usize;
    let mut gas_by_combo: BTreeMap<String, f64> = BTreeMap::new();
    for scenario in &scenarios {
        for (policy_name, policy) in &policies {
            let report = scenario.run(policy.clone());
            assert_eq!(
                report.total_ops(),
                scenario.trace.ops.len(),
                "{}/{policy_name}: every trace op must be accounted",
                scenario.name
            );
            assert_eq!(
                report.failed_delivers(),
                0,
                "{}/{policy_name}: honest SP must never have a deliver rejected",
                scenario.name
            );
            assert!(
                report.feed_gas_total() > 0,
                "{}/{policy_name}: a non-empty trace burns feed gas",
                scenario.name
            );
            gas_by_combo.insert(
                format!("{}/{policy_name}", scenario.name),
                report.feed_gas_per_op(),
            );
            combos += 1;
        }
    }
    assert!(
        combos >= 20,
        "matrix must cover at least 20 policy×workload combinations, got {combos}"
    );
    // The matrix is also a coarse sanity net on relative magnitudes: on the
    // write-only trace BL2 (always replicate) must be the most expensive
    // policy, since every adaptive policy learns to avoid on-chain storage
    // writes. Adaptive-K2 is exempt: the dual heuristic bets the future does
    // NOT repeat the past, so on a constant workload it mirrors BL2.
    let bl2_write_only = gas_by_combo["ratio/0/bl2"];
    for (combo, gas) in &gas_by_combo {
        if combo.starts_with("ratio/0/")
            && !combo.ends_with("/bl2")
            && !combo.ends_with("/adaptive-k2")
        {
            assert!(
                gas < &bl2_write_only,
                "{combo} ({gas:.0}) should undercut BL2 on write-only ({bl2_write_only:.0})"
            );
        }
    }
}

/// Theorem A.1: with `K = Cupdate/Cread_off` the memoryless algorithm's cost
/// is within 2× the offline optimum. The simulator meters whole-system feed
/// Gas (both runs pay identical consumer-side costs, which only tightens the
/// ratio), plus a small additive slack for warm-up edges on short traces.
#[test]
fn memoryless_stays_within_two_competitive_bound() {
    const SLACK_GAS: u64 = 64_000; // ~one Ctx+proof delivery of warm-up edge
    for scenario in scenarios() {
        let memoryless = scenario.run(PolicyKind::Memoryless { k: 2 });
        let optimal = scenario.run_offline_optimal();
        let bound = 2 * optimal.feed_gas_total() + SLACK_GAS;
        assert!(
            memoryless.feed_gas_total() <= bound,
            "{}: memoryless {} exceeds 2×optimal {} (+slack)",
            scenario.name,
            memoryless.feed_gas_total(),
            optimal.feed_gas_total(),
        );
    }
}

/// The windowed offline-optimal construction (bounded sliding lookahead,
/// streaming-friendly) must be gas-identical to the unbounded one whenever
/// the window covers the trace — on every scenario in the matrix, both for
/// a generously sized window and for one clamped exactly to the trace
/// length.
#[test]
fn windowed_offline_optimal_matches_unbounded_on_every_scenario() {
    let schedule = GasSchedule::default();
    let k = schedule.two_competitive_k();
    for scenario in scenarios() {
        let unbounded = scenario.run_offline_optimal();
        for window in [scenario.trace.ops.len().max(1), 1 << 20] {
            let policy = OfflineOptimal::from_trace_windowed(&scenario.trace, k, window);
            let windowed = GrubSystem::run_trace_with_policy(
                &scenario.trace,
                &scenario.config(PolicyKind::Bl1),
                Box::new(policy),
            )
            .unwrap_or_else(|e| panic!("{} windowed({window}) failed: {e}", scenario.name));
            assert_eq!(
                windowed.feed_gas_total(),
                unbounded.feed_gas_total(),
                "{}: window {window} changes offline-optimal gas",
                scenario.name
            );
        }
    }
}

/// §2.3's motivation: a fixed baseline can be catastrophically wrong on a
/// skewed workload, while GRuB adapts. On every skewed scenario GRuB must
/// beat the *worse* of BL1/BL2 — and on the extremes, by a wide margin.
#[test]
fn grub_beats_the_worse_baseline_on_skewed_workloads() {
    for scenario in scenarios() {
        let Some(read_heavy) = scenario.read_heavy else {
            continue;
        };
        let grub = scenario.run(PolicyKind::Memoryless { k: 2 });
        let bl1 = scenario.run(PolicyKind::Bl1);
        let bl2 = scenario.run(PolicyKind::Bl2);
        let (better, worse) = if read_heavy { (bl2, bl1) } else { (bl1, bl2) };
        assert!(
            grub.feed_gas_per_op() < worse.feed_gas_per_op(),
            "{}: GRuB {:.0} must beat the mismatched baseline {:.0}",
            scenario.name,
            grub.feed_gas_per_op(),
            worse.feed_gas_per_op(),
        );
        // And it tracks the well-matched baseline (§5.1: GRuB converges to
        // the better static strategy after the warm-up epochs).
        assert!(
            grub.feed_gas_per_op() < better.feed_gas_per_op() * 2.5,
            "{}: GRuB {:.0} should track the matched baseline {:.0}",
            scenario.name,
            grub.feed_gas_per_op(),
            better.feed_gas_per_op(),
        );
    }
}

/// A mild ±10% fee step for the stressed competitive-bound run: wide enough
/// to reprice every block, narrow enough that the 2-competitive bound stays
/// a meaningful assertion once inflated by the amplitude ratio.
fn mild_fee() -> FeeProcess {
    FeeProcess {
        regime: FeeRegime::Step {
            period: 8,
            low: 900,
            high: 1100,
        },
        seed: 11,
    }
}

/// The chain-realism axes layered over the matrix: seeded reorgs, the
/// volatile gas-price process, mempool congestion, and all three at once.
fn realism_axes() -> Vec<(&'static str, ChainConfig)> {
    vec![
        ("reorg", ChainConfig::default().reorg(7, 4, 2)),
        ("fee", ChainConfig::default().fee(FeeProcess::step(11))),
        ("congestion", ChainConfig::default().mempool(1)),
        (
            "combined",
            ChainConfig::default()
                .reorg(7, 4, 2)
                .fee(FeeProcess::step(11))
                .mempool(1),
        ),
    ]
}

/// A representative slice of the workload matrix for the realism axes —
/// the extremes, the balance point, and the two structured traces.
fn realism_scenarios() -> Vec<Scenario> {
    const PICKS: [&str; 5] = ["ratio/0", "ratio/1", "ratio/64", "oracle", "ycsb/A"];
    scenarios()
        .into_iter()
        .filter(|s| PICKS.contains(&s.name.as_str()))
        .collect()
}

/// Every policy completes every representative workload under every
/// chain-realism axis — reorgs, volatile fees, congestion, and the
/// combination — with the op accounting and honest-SP invariants intact.
#[test]
fn chain_realism_axes_run_every_policy() {
    let scenarios = realism_scenarios();
    assert_eq!(scenarios.len(), 5, "the representative slice went missing");
    for (axis, chain) in realism_axes() {
        for scenario in &scenarios {
            for (policy_name, policy) in &policies() {
                let mut config = scenario.config(policy.clone());
                config.chain = chain;
                let report = GrubSystem::run_trace(&scenario.trace, &config).unwrap_or_else(|e| {
                    panic!("{axis}/{}/{policy_name} failed: {e}", scenario.name)
                });
                assert_eq!(
                    report.total_ops(),
                    scenario.trace.ops.len(),
                    "{axis}/{}/{policy_name}: every trace op must be accounted",
                    scenario.name
                );
                assert_eq!(
                    report.failed_delivers(),
                    0,
                    "{axis}/{}/{policy_name}: honest SP must never have a deliver rejected",
                    scenario.name
                );
            }
        }
    }
}

/// The confirmation axes layered over the matrix: depth-N acknowledgment,
/// seeded inclusion latency, both, and both under the full chain-realism
/// stack (reorgs + volatile fees + congestion). Depth 0 / latency off is
/// the identity axis the rest of the matrix already runs.
fn confirmation_axes() -> Vec<(&'static str, ChainConfig)> {
    vec![
        ("depth3", ChainConfig::default().confirm_depth(3)),
        ("latency", ChainConfig::default().latency(5, 2)),
        (
            "depth3+latency",
            ChainConfig::default().confirm_depth(3).latency(5, 2),
        ),
        (
            "confirmation+realism",
            ChainConfig::default()
                .confirm_depth(3)
                .latency(5, 2)
                .reorg(7, 4, 2)
                .fee(FeeProcess::step(11))
                .mempool(1),
        ),
    ]
}

/// Every policy completes every representative workload under every
/// confirmation axis — depth-3 acknowledgment, inclusion latency, and the
/// combination with the full realism stack — with op accounting and the
/// honest-SP invariant intact, and the run fully confirmed at the end.
#[test]
fn confirmation_axes_run_every_policy() {
    let scenarios = realism_scenarios();
    assert_eq!(scenarios.len(), 5, "the representative slice went missing");
    for (axis, chain) in confirmation_axes() {
        for scenario in &scenarios {
            for (policy_name, policy) in &policies() {
                let mut config = scenario.config(policy.clone());
                config.chain = chain;
                let mut system = GrubSystem::new(&config)
                    .unwrap_or_else(|e| panic!("{axis}/{}/{policy_name}: {e}", scenario.name));
                system.drive(&scenario.trace).unwrap_or_else(|e| {
                    panic!("{axis}/{}/{policy_name} failed: {e}", scenario.name)
                });
                let epochs = system.reports();
                assert_eq!(
                    epochs.iter().map(|e| e.ops).sum::<usize>(),
                    scenario.trace.ops.len(),
                    "{axis}/{}/{policy_name}: every trace op must be accounted",
                    scenario.name
                );
                assert_eq!(
                    epochs.iter().map(|e| e.failed_delivers).sum::<usize>(),
                    0,
                    "{axis}/{}/{policy_name}: honest SP must never have a deliver rejected",
                    scenario.name
                );
                assert_eq!(
                    system.chain().confirmation_lag(),
                    0,
                    "{axis}/{}/{policy_name}: every acknowledged write must be confirmed",
                    scenario.name
                );
            }
        }
    }
}

/// Theorem A.1 under the complete stack: depth-3 confirmation and inclusion
/// latency layered on top of reorgs, the ±10% fee step, and a one-slot
/// mempool. Confirmation delays *when* writes are acknowledged, never *what*
/// they cost, so the amplitude-adjusted 2-competitive bound from the
/// chain-stress run must keep holding unchanged.
#[test]
fn memoryless_bound_survives_the_confirmation_stack() {
    const SLACK_GAS: u64 = 64_000;
    let stress = ChainConfig::default()
        .reorg(7, 4, 2)
        .fee(mild_fee())
        .mempool(1)
        .confirm_depth(3)
        .latency(5, 2);
    for scenario in realism_scenarios() {
        let run = |policy: PolicyKind| {
            let mut config = scenario.config(policy);
            config.chain = stress;
            GrubSystem::run_trace(&scenario.trace, &config).unwrap_or_else(|e| {
                panic!("{} under the confirmation stack failed: {e}", scenario.name)
            })
        };
        let memoryless = run(PolicyKind::Memoryless { k: 2 });
        let optimal = {
            let schedule = GasSchedule::default();
            let policy = OfflineOptimal::from_trace(&scenario.trace, schedule.two_competitive_k());
            let mut config = scenario.config(PolicyKind::Bl1);
            config.chain = stress;
            GrubSystem::run_trace_with_policy(&scenario.trace, &config, Box::new(policy))
                .unwrap_or_else(|e| {
                    panic!(
                        "{} optimal under the confirmation stack failed: {e}",
                        scenario.name
                    )
                })
        };
        // Same inflation as the chain-stress bound: the fee step may price
        // memoryless at the 1100‰ plateau against a 900‰ optimum.
        let bound = 2 * optimal.feed_gas_total() * 11 / 9 + 2 * SLACK_GAS;
        assert!(
            memoryless.feed_gas_total() <= bound,
            "{}: confirmed memoryless {} exceeds amplitude-adjusted 2×optimal {}",
            scenario.name,
            memoryless.feed_gas_total(),
            optimal.feed_gas_total(),
        );
    }
}

/// Reorgs are digest-transparent for every policy: the forked-and-replayed
/// run converges to the straight-line run's exact chain digest, height, and
/// Gas totals — the policy layer cannot even tell the forks happened.
#[test]
fn reorgs_are_digest_transparent_for_every_policy() {
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == "ycsb/A")
        .expect("ycsb/A scenario exists");
    for (policy_name, policy) in &policies() {
        let run = |chain: ChainConfig| {
            let mut config = scenario.config(policy.clone());
            config.chain = chain;
            let mut system =
                GrubSystem::new(&config).unwrap_or_else(|e| panic!("ycsb-a/{policy_name}: {e}"));
            system.drive(&scenario.trace).unwrap();
            system
        };
        let plain = run(ChainConfig::default());
        let forked = run(ChainConfig::default().reorg(7, 2, 2));
        assert!(
            !forked.chain().reorg_events().is_empty(),
            "ycsb-a/{policy_name}: the reorg process never forked"
        );
        assert_eq!(
            forked.chain().chain_digest(),
            plain.chain().chain_digest(),
            "ycsb-a/{policy_name}: reorg-and-replay must converge to the straight-line digest"
        );
        assert_eq!(
            forked.chain().height(),
            plain.chain().height(),
            "ycsb-a/{policy_name}: canonical height must match"
        );
    }
}

/// Theorem A.1 under chain stress: with reorgs, congestion, and a ±10% fee
/// step all active, the memoryless policy stays within the 2-competitive
/// bound of the (fee-blind) offline optimum — inflated by the fee amplitude
/// ratio, since block heights (and so prices) differ between the two runs.
#[test]
fn memoryless_bound_survives_chain_stress() {
    const SLACK_GAS: u64 = 64_000;
    let stress = ChainConfig::default()
        .reorg(7, 4, 2)
        .fee(mild_fee())
        .mempool(1);
    for scenario in realism_scenarios() {
        let run = |policy: PolicyKind| {
            let mut config = scenario.config(policy);
            config.chain = stress;
            GrubSystem::run_trace(&scenario.trace, &config)
                .unwrap_or_else(|e| panic!("{} under stress failed: {e}", scenario.name))
        };
        let memoryless = run(PolicyKind::Memoryless { k: 2 });
        let optimal = {
            let schedule = GasSchedule::default();
            let policy = OfflineOptimal::from_trace(&scenario.trace, schedule.two_competitive_k());
            let mut config = scenario.config(PolicyKind::Bl1);
            config.chain = stress;
            GrubSystem::run_trace_with_policy(&scenario.trace, &config, Box::new(policy))
                .unwrap_or_else(|e| panic!("{} optimal under stress failed: {e}", scenario.name))
        };
        // Bound inflation: memoryless may be priced at the 1100‰ plateau
        // where the optimum was priced at 900‰, so 2× becomes 2×(11/9).
        let bound = 2 * optimal.feed_gas_total() * 11 / 9 + 2 * SLACK_GAS;
        assert!(
            memoryless.feed_gas_total() <= bound,
            "{}: stressed memoryless {} exceeds amplitude-adjusted 2×optimal {}",
            scenario.name,
            memoryless.feed_gas_total(),
            optimal.feed_gas_total(),
        );
    }
}

/// The control loop converges: read-heavy traffic ends with the hot record
/// replicated on chain, write-heavy traffic ends with it off chain — for
/// every adaptive policy that makes convergence claims.
#[test]
fn replication_state_converges_with_the_workload() {
    let adaptive: Vec<(&str, PolicyKind)> = vec![
        ("memoryless", PolicyKind::Memoryless { k: 2 }),
        (
            "memorizing",
            PolicyKind::Memorizing {
                k_prime: 2.3,
                d: 2.0,
            },
        ),
        ("self-tuning", PolicyKind::SelfTuning { window: 16 }),
    ];
    for scenario in scenarios() {
        let Some(read_heavy) = scenario.read_heavy else {
            continue;
        };
        let expected = if read_heavy {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        };
        for (policy_name, policy) in &adaptive {
            let mut system = GrubSystem::new(&scenario.config(policy.clone()))
                .unwrap_or_else(|e| panic!("{}/{policy_name}: {e}", scenario.name));
            system.drive(&scenario.trace).unwrap();
            assert_eq!(
                system.owner().state_of("feed"),
                expected,
                "{}/{policy_name}: replica state must converge with the workload",
                scenario.name,
            );
            if read_heavy {
                // Converged read-heavy feeds serve from the replica: the
                // final blocks carry no Request events.
                let height = system.chain().height();
                let manager = system.manager();
                let recent =
                    system
                        .chain()
                        .events_since(height.saturating_sub(2), manager, "Request");
                assert!(
                    recent.is_empty(),
                    "{}/{policy_name}: converged feed still requests deliveries",
                    scenario.name,
                );
            }
        }
    }
}
