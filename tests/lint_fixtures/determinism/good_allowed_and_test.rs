//! Fixture: justified allows and #[cfg(test)] regions must pass.
use std::collections::HashMap;

pub fn sorted_keys(m: &HashMap<String, u64>) -> Vec<String> {
    // grub-lint: allow(determinism) — sorted immediately below
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_iteration_is_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        for (_k, _v) in m.iter() {}
        let _ = std::time::SystemTime::now();
    }
}
