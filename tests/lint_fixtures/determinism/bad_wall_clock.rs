//! Fixture: wall-clock reads in a digest-feeding crate must be flagged.

pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}
