//! Fixture: BTreeMap iteration is deterministic and must pass.
use std::collections::BTreeMap;

pub fn digest_input(balances: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    balances.iter().map(|(k, v)| (k.clone(), *v)).collect()
}
