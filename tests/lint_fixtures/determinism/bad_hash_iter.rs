//! Fixture: iterating a HashMap in a digest-feeding crate must be flagged.
use std::collections::HashMap;

pub fn digest_input(balances: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (k, v) in balances.iter() {
        out.push((k.clone(), *v));
    }
    out
}
