//! Fixture chain crate: every knob read is documented and every fault
//! point has a hook site.

pub fn seed() -> u64 {
    match std::env::var("GRUB_SEED") {
        Ok(raw) => raw.parse().unwrap_or(0),
        Err(_) => 0,
    }
}

pub fn hooks() -> (&'static str, &'static str) {
    let _ = FaultPoint::PreCommit;
    let _ = FaultPoint::Orphan;
    ("pre-commit", "orphan")
}

pub enum FaultPoint {
    PreCommit,
    Orphan,
}
