//! Fixture fault crate: both variants are hooked and documented.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    PreCommit,
    Orphan,
}
