//! Fixture chain crate: reads a documented knob, an undocumented knob,
//! and hooks only `FaultPoint::PreCommit`.

pub fn seed() -> u64 {
    match std::env::var("GRUB_SEED") {
        Ok(raw) => raw.parse().unwrap_or(0),
        Err(_) => 0,
    }
}

pub fn rogue() -> bool {
    std::env::var("GRUB_ROGUE").is_ok()
}

pub fn hook() -> &'static str {
    let _ = FaultPoint::PreCommit;
    "hooked"
}

pub enum FaultPoint {
    PreCommit,
}
