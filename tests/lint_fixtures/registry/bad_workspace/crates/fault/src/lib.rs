//! Fixture fault crate: `Orphan` has no hook site and no doc mention.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    PreCommit,
    Orphan,
}
