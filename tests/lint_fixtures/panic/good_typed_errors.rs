//! Fixture: typed errors, justified allows, and test-only panics must pass.

pub fn parse(raw: &str) -> Result<u64, String> {
    let first = raw.split(':').next().ok_or("empty input")?;
    first.parse().map_err(|e| format!("bad number: {e}"))
}

pub fn head(xs: &[u64]) -> u64 {
    // grub-lint: allow(panic) — callers guarantee a non-empty slice
    *xs.first().expect("non-empty by contract")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(parse("7").unwrap(), 7);
    }
}
