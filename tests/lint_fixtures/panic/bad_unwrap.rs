//! Fixture: unwrap/expect/panic! in non-test library code must be flagged.

pub fn parse(raw: &str) -> u64 {
    let first = raw.split(':').next().unwrap();
    let n: u64 = first.parse().expect("numeric");
    if n == 0 {
        panic!("zero is not allowed");
    }
    n
}
