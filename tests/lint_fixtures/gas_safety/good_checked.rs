//! Fixture: gas arithmetic routed through the checked helpers must pass,
//! and non-gas arithmetic is out of scope entirely.

pub fn checked_add_gas(a: u64, b: u64) -> u64 {
    a.checked_add(b).unwrap_or(u64::MAX)
}

pub fn settle(feed_gas: u64, app_gas: u64) -> u64 {
    checked_add_gas(feed_gas, app_gas)
}

pub fn unrelated(height: u64, delta: u64) -> u64 {
    height + delta
}
