//! Fixture: bare arithmetic on raw gas counters must be flagged.

pub fn settle(feed_gas: u64, app_gas: u64) -> u64 {
    let mut total_gas = feed_gas + app_gas;
    total_gas += 21_000;
    total_gas - 1
}
